"""Tests for ObsSession: run directories, phase timers, simulator bridge,
and the same-seed stream-determinism guarantee."""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.metrics import RunMetrics
from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.obs.events import strip_timestamps
from repro.obs.manifest import RunManifest
from repro.obs.session import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    OBS_DIR_ENV,
    ObsSession,
    emit_run_metrics,
    session_from_env,
)
from repro.obs.sinks import MemorySink
from repro.obs.summary import read_events, summarize_events


class EchoOnce(NodeAlgorithm):
    """Round 0: broadcast own id.  Round 1: halt with the senders seen."""

    name = "echo-once"

    def on_round(self, ctx, inbox):
        if ctx.round_index == 0:
            ctx.broadcast(("id", ctx.node))
        else:
            ctx.halt(("saw", tuple(sorted(m.sender for m in inbox))))


def memory_session(clock=None):
    """A session writing to memory, optionally on a fake clock."""
    manifest = RunManifest(run_id="t", kind="test", created_at="t")
    kwargs = {}
    if clock is not None:
        kwargs = {"clock": clock, "wall": clock}
    return ObsSession("unused", manifest, MemorySink(), **kwargs)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


class TestRunDirectory:
    def test_create_materializes_manifest_and_stream(self, tmp_path):
        session = ObsSession.create(
            tmp_path, kind="run", name="smoke", seed=3, params={"n": 5}
        )
        session.emit("note", message="hello")
        directory = session.finish()
        assert directory.parent == tmp_path
        assert directory.name.startswith("run-smoke-")
        manifest = RunManifest.load(directory / MANIFEST_FILENAME)
        assert (manifest.kind, manifest.seed) == ("run", 3)
        assert manifest.params == {"n": 5}
        records = read_events(directory / EVENTS_FILENAME)
        assert records[0]["kind"] == "note" and "ts" in records[0]

    def test_finish_is_idempotent_and_context_manager_closes(self, tmp_path):
        with ObsSession.create(tmp_path, kind="run") as session:
            session.note("x")
        assert session.finish() == session.directory  # second finish: no-op
        assert (session.directory / EVENTS_FILENAME).is_file()

    def test_distinct_run_ids_same_second(self, tmp_path):
        a = ObsSession.create(tmp_path, kind="run")
        b = ObsSession.create(tmp_path, kind="run")
        assert a.directory != b.directory
        a.finish(), b.finish()


class TestPhaseTimers:
    def test_phase_emits_pair_and_accumulates(self):
        session = memory_session(clock=FakeClock())
        with session.phase("shattering"):
            pass
        with session.phase("shattering"):
            pass
        kinds = [e.kind for e in session.sink]
        assert kinds == ["phase-start", "phase-end"] * 2
        end = session.sink.events[1]
        assert end.phase == "shattering" and end.dur_s > 0
        # Two visits accumulate into one bucket.
        assert session.phase_seconds == {"shattering": pytest.approx(2 * end.dur_s)}

    def test_attach_metrics_folds_into_run_metrics(self):
        session = memory_session(clock=FakeClock())
        with session.phase("finishing"):
            pass
        metrics = RunMetrics(congest_budget_bits=64)
        session.attach_metrics(metrics)
        assert metrics.phase_seconds["finishing"] > 0
        assert "finishing" in metrics.summary()

    def test_phase_closes_on_exception(self):
        session = memory_session(clock=FakeClock())
        try:
            with session.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert [e.kind for e in session.sink] == ["phase-start", "phase-end"]


class TestSimulatorObserver:
    def run_observed(self, sink=None):
        session = memory_session()
        if sink is not None:
            session.sink = sink
        net = Network(nx.path_graph(3))
        result = SynchronousSimulator(net, seed=1, observer=session.observer()).run(
            EchoOnce()
        )
        return result, list(session.sink)

    def test_stream_covers_run_lifecycle(self):
        result, events = self.run_observed()
        kinds = [e.kind for e in events]
        assert kinds[0] == "run-start"
        assert kinds[1] == "start-round"  # synthetic pre-round, always emitted
        assert kinds[-1] == "run-end"
        assert kinds.count("round") == result.metrics.rounds == 2
        assert kinds.count("halt") == 3

    def test_run_end_carries_authoritative_totals(self):
        result, events = self.run_observed()
        end = events[-1]
        assert end.data["messages"] == result.metrics.total_messages == 4
        assert end.data["bits"] == result.metrics.total_bits
        assert end.data["halted"] is True
        assert end.dur_s is not None

    def test_summary_reconstructs_metrics_from_stream(self):
        result, events = self.run_observed()
        summary = summarize_events([e.to_dict() for e in events])
        assert summary.runs == 1
        assert summary.total_rounds == result.metrics.rounds
        assert summary.total_messages == result.metrics.total_messages
        assert summary.total_bits == result.metrics.total_bits
        assert summary.max_message_bits == result.metrics.max_message_bits


class TestSameSeedDeterminism:
    def test_two_same_seed_runs_identical_up_to_timestamps(self, tmp_path):
        # The PR's acceptance criterion: re-running with the same seed
        # yields byte-identical streams once timestamp fields are removed.
        streams = []
        for label in ("a", "b"):
            with ObsSession.create(tmp_path, kind="run", name=label) as session:
                net = Network(nx.path_graph(4))
                SynchronousSimulator(
                    net, seed=7, observer=session.observer()
                ).run(EchoOnce())
            streams.append(read_events(session.directory / EVENTS_FILENAME))
        assert strip_timestamps(streams[0]) == strip_timestamps(streams[1])
        # ... and the raw streams really did carry differing wall stamps.
        assert "ts" in streams[0][0]


class TestReplayAndEnv:
    def test_emit_run_metrics_matches_live_observer_totals(self):
        net = Network(nx.path_graph(3))
        result = SynchronousSimulator(net, seed=1).run(EchoOnce())
        session = memory_session()
        emit_run_metrics(session, result.metrics)
        summary = summarize_events([e.to_dict() for e in session.sink])
        assert summary.total_rounds == result.metrics.rounds
        assert summary.total_bits == result.metrics.total_bits

    def test_session_from_env_disabled_without_variable(self, monkeypatch):
        monkeypatch.delenv(OBS_DIR_ENV, raising=False)
        assert session_from_env("run") is None

    def test_session_from_env_creates_under_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "obs"))
        session = session_from_env("sweep", name="e2", seed=1)
        assert session is not None
        session.finish()
        assert (session.directory / MANIFEST_FILENAME).is_file()
        assert json.loads(
            (session.directory / MANIFEST_FILENAME).read_text()
        )["kind"] == "sweep"
