"""Tests for event sinks: buffering, streaming, sampling, backpressure."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import ObsEvent
from repro.obs.sinks import JsonlSink, MemorySink, MultiSink, NullSink


def _events(n, kind="e"):
    return [ObsEvent(kind, data={"i": i}) for i in range(n)]


class TestMemorySink:
    def test_collects_in_order(self):
        sink = MemorySink()
        for event in _events(5):
            sink.emit(event)
        assert [e.data["i"] for e in sink] == [0, 1, 2, 3, 4]

    def test_cap_sets_truncated_and_counts_drops(self):
        sink = MemorySink(max_events=3)
        for event in _events(10):
            sink.emit(event)
        assert len(sink) == 3
        assert sink.truncated
        assert sink.dropped == 7


class TestJsonlSink:
    def test_streams_and_flushes_on_close(self, tmp_path):
        path = tmp_path / "a" / "events.jsonl"  # parent created on demand
        sink = JsonlSink(path)
        for event in _events(10):
            sink.emit(event)
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["i"] for r in records] == list(range(10))

    def test_bounded_write_buffer(self, tmp_path):
        # flush_every bounds memory: after k emits the lines are on disk
        # even without close().
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=4)
        for event in _events(4):
            sink.emit(event)
        assert len(path.read_text().splitlines()) == 4
        sink.close()

    def test_deterministic_sampling_keeps_every_kth(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, sample_every={"send": 3})
        for event in _events(9, kind="send"):
            sink.emit(event)
        sink.emit(ObsEvent("round"))  # other kinds unaffected
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        sends = [r["i"] for r in records if r["kind"] == "send"]
        assert sends == [0, 3, 6]
        assert any(r["kind"] == "round" for r in records)
        # Loss is accounted: the final sink-stats event reports the drop.
        (stats,) = [r for r in records if r["kind"] == "sink-stats"]
        assert stats["sampled_out"] == {"send": 6}

    def test_max_events_backpressure(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_events=5)
        for event in _events(20):
            sink.emit(event)
        sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert sink.truncated
        payload = [r for r in records if r["kind"] == "e"]
        assert len(payload) == 5
        (stats,) = [r for r in records if r["kind"] == "sink-stats"]
        assert stats["dropped"] == 15 and stats["truncated"] is True

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(ObsEvent("e"))

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            sink.emit(ObsEvent("e"))
            sink.close()
        kinds = [
            json.loads(line)["kind"] for line in path.read_text().splitlines()
        ]
        assert kinds.count("e") == 2

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", flush_every=0)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "y.jsonl", sample_every={"send": 0})


class TestMultiSink:
    def test_fans_out_and_closes_all(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "events.jsonl")
        multi = MultiSink(memory, jsonl, NullSink())
        multi.emit(ObsEvent("e", data={"i": 1}))
        multi.close()
        assert len(memory) == 1
        assert json.loads((tmp_path / "events.jsonl").read_text())["i"] == 1
