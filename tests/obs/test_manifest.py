"""Tests for run manifests (repro.obs.manifest)."""

from __future__ import annotations

import json

from repro._version import __version__
from repro.obs.manifest import VOLATILE_FIELDS, RunManifest, git_sha


class TestCapture:
    def test_records_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        monkeypatch.setenv("UNRELATED_VAR", "ignored")
        manifest = RunManifest.capture(
            run_id="run-1",
            kind="run",
            created_at="2026-01-01T00:00:00Z",
            seed=7,
            params={"algorithm": "arb-mis"},
        )
        assert manifest.seed == 7
        assert manifest.params == {"algorithm": "arb-mis"}
        assert manifest.package_version == __version__
        assert manifest.python_version
        assert manifest.pid > 0
        assert manifest.env["REPRO_SWEEP_WORKERS"] == "4"
        assert "UNRELATED_VAR" not in manifest.env

    def test_git_sha_best_effort(self, tmp_path):
        # Inside this repo it resolves; in an empty directory it is None.
        assert git_sha(tmp_path) is None


class TestSerialization:
    def test_write_load_roundtrip(self, tmp_path):
        manifest = RunManifest.capture(
            run_id="run-2", kind="sweep", created_at="t", seed=0, params={"n": 3}
        )
        path = manifest.write(tmp_path / "deep" / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_load_tolerates_unknown_fields(self, tmp_path):
        manifest = RunManifest.capture(run_id="r", kind="run", created_at="t")
        path = manifest.write(tmp_path / "manifest.json")
        record = json.loads(path.read_text())
        record["future_field"] = "from a newer schema"
        path.write_text(json.dumps(record))
        assert RunManifest.load(path).run_id == "r"


class TestStableDict:
    def test_rerun_manifests_agree_after_volatile_strip(self):
        # The property `repro obs diff` relies on: two captures of the same
        # command differ only in VOLATILE_FIELDS.
        a = RunManifest.capture(
            run_id="a", kind="run", created_at="t1", seed=5, params={"n": 8}
        )
        b = RunManifest.capture(
            run_id="b", kind="run", created_at="t2", seed=5, params={"n": 8}
        )
        assert a.stable_dict() == b.stable_dict()
        assert "created_at" not in a.stable_dict()
        assert VOLATILE_FIELDS <= set(a.to_dict())
