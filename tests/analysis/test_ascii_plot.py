"""Tests for the ASCII plotter."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(no data)"
        assert ascii_plot({}, title="T") == "T"

    def test_contains_markers_and_legend(self):
        text = ascii_plot({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]})
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_extremes_on_borders(self):
        text = ascii_plot({"s": [(0, 0), (10, 100)]}, width=20, height=6)
        lines = text.splitlines()
        # top line holds the max marker, bottom grid line the min.
        assert "o" in lines[0]
        assert "o" in lines[5]

    def test_axis_labels_present(self):
        text = ascii_plot(
            {"s": [(1, 1), (8, 3)]}, log_x=True, x_label="n", y_label="iters"
        )
        assert "log scale" in text
        assert "y: iters" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 1)]}, log_x=True)

    def test_collision_marker(self):
        text = ascii_plot({"a": [(1, 1)], "b": [(1, 1)]}, width=10, height=4)
        assert "?" in text

    def test_constant_series(self):
        # Degenerate spans must not divide by zero.
        text = ascii_plot({"s": [(1, 5), (2, 5), (3, 5)]})
        assert "o" in text

    def test_y_range_labels(self):
        text = ascii_plot({"s": [(0, 2.5), (1, 7.5)]}, height=5)
        assert "7.5" in text
        assert "2.5" in text
