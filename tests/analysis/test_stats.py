"""Tests for summary statistics."""

from __future__ import annotations

import pytest

from repro.analysis.stats import Summary, mean_confidence_interval, summarize


class TestMeanCI:
    def test_single_value(self):
        assert mean_confidence_interval([5.0]) == (5.0, 0.0)

    def test_constant_sample(self):
        mean, half = mean_confidence_interval([3.0] * 10)
        assert mean == 3.0
        assert half == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_wider_with_more_spread(self):
        _, tight = mean_confidence_interval([1.0, 1.1, 0.9, 1.0])
        _, wide = mean_confidence_interval([1.0, 5.0, -3.0, 1.0])
        assert wide > tight

    def test_contains_true_mean_for_gaussian(self):
        import numpy as np

        rng = np.random.default_rng(3)
        hits = 0
        for _ in range(40):
            sample = rng.normal(10.0, 2.0, size=20)
            mean, half = mean_confidence_interval(sample)
            if mean - half <= 10.0 <= mean + half:
                hits += 1
        assert hits >= 33  # 95% nominal coverage, generous slack


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))

    def test_interval_property(self):
        s = summarize([1.0, 2.0, 3.0])
        low, high = s.interval
        assert low <= s.mean <= high
