"""Tests for ASCII table rendering."""

from __future__ import annotations

from repro.analysis.tables import format_table, render_rows


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159], [0.0001], [12345.6]])
        assert "3.142" in text
        assert "0.0001" in text
        assert "1.23e+04" in text

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width


class TestRenderRows:
    def test_union_of_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_rows(rows)
        assert "a" in text and "b" in text

    def test_empty(self):
        assert render_rows([]) == "(no rows)"
        assert render_rows([], title="T") == "T"

    def test_missing_values_blank(self):
        text = render_rows([{"a": 1}, {"b": 2}])
        assert text.count("1") >= 1
