"""Tests for the fault-tolerant sweep runtime: FailurePolicy semantics,
bounded retries with deterministic backoff, per-cell timeouts, persisted
failure records, and known-bad handling on resume."""

from __future__ import annotations

import time

import pytest

from repro.analysis.cache import CellFailure, SweepCache
from repro.analysis.runner import FailurePolicy, SweepRunner
from repro.analysis.sweep import run_sweep
from repro.errors import ConfigurationError, NotMaximalError
from repro.graphs.generators import GraphSpec
from repro.mis.metivier import metivier_mis
from repro.obs.events import EVENT_SWEEP_END, EVENT_SWEEP_FAILURE
from repro.obs.manifest import RunManifest
from repro.obs.session import ObsSession
from repro.obs.sinks import MemorySink

SPECS = [GraphSpec("tree")]
SIZES = [16, 24]
SEEDS = [0, 1]


def broken_mis(graph, seed=0):
    """Picklable deliberately-wrong algorithm (empty set is never maximal)."""
    from repro.mis.engine import MISResult

    return MISResult(mis=set(), iterations=0, algorithm="broken", seed=seed)


def slow_mis(graph, seed=0):
    """Overruns any sub-100ms cell budget, then answers correctly."""
    time.sleep(0.15)
    return metivier_mis(graph, seed=seed)


class FlakyMIS:
    """Fails the first ``failures`` calls per cell, then succeeds.

    Call counts live in a file path so the double works across retry
    attempts regardless of process boundaries (the serial path reuses
    the instance; a worker would re-import it).
    """

    def __init__(self, counter_dir, failures=1):
        self.counter_dir = counter_dir
        self.failures = failures

    def __call__(self, graph, seed=0):
        marker = self.counter_dir / f"cell-{graph.number_of_nodes()}-{seed}"
        count = int(marker.read_text()) if marker.exists() else 0
        marker.write_text(str(count + 1))
        if count < self.failures:
            raise RuntimeError(f"flaky failure #{count + 1}")
        return metivier_mis(graph, seed=seed)


class TestFailurePolicyConfig:
    def test_defaults_are_fail_fast(self):
        policy = FailurePolicy()
        assert policy.on_error == "fail-fast"
        assert policy.max_attempts == 1
        assert policy.cell_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_error": "explode"},
            {"retries": -1},
            {"cell_timeout": 0.0},
            {"cell_timeout": -5.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            FailurePolicy(**kwargs)

    def test_retry_mode_defaults_to_two_extra_attempts(self):
        assert FailurePolicy(on_error="retry").max_attempts == 3
        assert FailurePolicy(on_error="retry", retries=5).max_attempts == 6

    def test_from_env(self):
        env = {
            "REPRO_SWEEP_ON_ERROR": "continue",
            "REPRO_SWEEP_RETRIES": "3",
            "REPRO_SWEEP_CELL_TIMEOUT": "1.5",
        }
        policy = FailurePolicy.from_env(env)
        assert policy.on_error == "continue"
        assert policy.retries == 3
        assert policy.cell_timeout == 1.5
        assert FailurePolicy.from_env({}).on_error == "fail-fast"

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FailurePolicy(on_error="continue", retries=4, backoff_base=0.1)
        fp = "ab" * 32
        for attempt in range(1, 5):
            first = policy.backoff_seconds(fp, attempt)
            assert first == policy.backoff_seconds(fp, attempt)
            base = min(policy.backoff_cap, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * base <= first < base

    def test_known_bad_handling_per_mode(self):
        assert not FailurePolicy(on_error="continue").retry_known_bad
        assert FailurePolicy(on_error="retry").retry_known_bad
        assert FailurePolicy().retry_known_bad


class TestContinueMode:
    def test_healthy_cells_survive_a_broken_algorithm(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        result = run_sweep(
            specs=SPECS,
            sizes=SIZES,
            algorithms={"metivier": metivier_mis, "broken": broken_mis},
            seeds=SEEDS,
            parallel=False,
            cache=cache_path,
            failure_policy=FailurePolicy(on_error="continue"),
        )
        healthy = len(SIZES) * len(SEEDS)
        assert len(result.points) == healthy
        assert len(result.failures) == healthy
        assert all(f.error_type == "NotMaximalError" for f in result.failures)
        cache = SweepCache(cache_path)
        assert len(cache) == healthy
        assert cache.failure_count == healthy

    def test_resume_skips_known_bad_cells(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        policy = FailurePolicy(on_error="continue")
        kwargs = dict(
            specs=SPECS,
            sizes=SIZES,
            algorithms={"broken": broken_mis},
            seeds=SEEDS,
            parallel=False,
            cache=cache_path,
            failure_policy=policy,
        )
        first = run_sweep(**kwargs)
        lines_after_first = cache_path.read_text().count("\n")
        second = run_sweep(**kwargs)
        # The resumed sweep consulted the failure records instead of
        # re-executing: no new cache lines, same reported failures.
        assert cache_path.read_text().count("\n") == lines_after_first
        assert [f.key for f in second.failures] == [f.key for f in first.failures]

    def test_retry_mode_reattempts_known_bad_on_resume(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        flaky = FlakyMIS(tmp_path, failures=1)
        kwargs = dict(
            specs=SPECS,
            sizes=[16],
            algorithms={"flaky": flaky},
            seeds=[0],
            parallel=False,
            cache=cache_path,
        )
        # No in-run retries: the first sweep records the cell as bad.
        first = run_sweep(
            failure_policy=FailurePolicy(on_error="continue"), **kwargs
        )
        assert len(first.failures) == 1
        # retry mode re-attempts it on resume; the flake has passed, so the
        # point lands and the failure record is superseded.
        second = run_sweep(
            failure_policy=FailurePolicy(on_error="retry", retries=1), **kwargs
        )
        assert len(second.points) == 1
        assert second.failures == []
        cache = SweepCache(cache_path)
        assert len(cache) == 1
        assert cache.failure_count == 0


class TestRetries:
    def test_flaky_cell_recovers_within_attempts(self, tmp_path):
        flaky = FlakyMIS(tmp_path, failures=2)
        result = run_sweep(
            specs=SPECS,
            sizes=[16],
            algorithms={"flaky": flaky},
            seeds=[0],
            parallel=False,
            failure_policy=FailurePolicy(
                on_error="continue", retries=2, backoff_base=0.001
            ),
        )
        assert len(result.points) == 1
        assert result.failures == []

    def test_attempts_are_bounded(self, tmp_path):
        flaky = FlakyMIS(tmp_path, failures=5)
        result = run_sweep(
            specs=SPECS,
            sizes=[16],
            algorithms={"flaky": flaky},
            seeds=[0],
            parallel=False,
            failure_policy=FailurePolicy(
                on_error="continue", retries=1, backoff_base=0.001
            ),
        )
        assert len(result.points) == 0
        assert result.failures[0].attempts == 2
        assert result.failures[0].error_type == "RuntimeError"


class TestFailFast:
    def test_raises_original_exception_and_records_failure(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        with pytest.raises(NotMaximalError):
            run_sweep(
                specs=SPECS,
                sizes=[16],
                algorithms={"broken": broken_mis},
                seeds=[0],
                parallel=False,
                cache=cache_path,
                failure_policy=FailurePolicy(),
            )
        # Even fail-fast leaves a forensic record for the next resume.
        assert SweepCache(cache_path).failure_count == 1

    def test_serial_stops_at_first_failure(self, tmp_path):
        calls = tmp_path / "calls"
        calls.mkdir()

        def counting_broken(graph, seed=0):
            (calls / f"{graph.number_of_nodes()}-{seed}").write_text("x")
            return broken_mis(graph, seed=seed)

        with pytest.raises(NotMaximalError):
            run_sweep(
                specs=SPECS,
                sizes=SIZES,
                algorithms={"broken": counting_broken},
                seeds=SEEDS,
                parallel=False,
                failure_policy=FailurePolicy(),
            )
        assert len(list(calls.iterdir())) == 1


class TestCellTimeout:
    def test_serial_overrun_recorded_as_timeout(self):
        result = run_sweep(
            specs=SPECS,
            sizes=[16],
            algorithms={"slow": slow_mis},
            seeds=[0],
            parallel=False,
            failure_policy=FailurePolicy(
                on_error="continue", cell_timeout=0.01, backoff_base=0.001
            ),
        )
        assert len(result.points) == 0
        assert result.failures[0].timed_out
        assert result.failures[0].error_type == "TimeoutError"

    def test_parallel_overrun_abandoned_and_recorded(self):
        result = run_sweep(
            specs=SPECS,
            sizes=[16, 24],
            algorithms={"slow": slow_mis, "metivier": metivier_mis},
            seeds=[0],
            parallel=True,
            max_workers=2,
            failure_policy=FailurePolicy(on_error="continue", cell_timeout=0.05),
        )
        # Healthy cells complete; every slow cell is written off.
        assert {p.algorithm for p in result.points} == {"metivier"}
        assert len(result.failures) == 2
        assert all(f.timed_out for f in result.failures)


class TestFailureCache:
    def test_failure_records_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = SweepCache(path)
        failure = CellFailure(
            key="k1",
            family="tree",
            n=16,
            algorithm="broken",
            seed=0,
            error_type="RuntimeError",
            error="boom",
            attempts=3,
            timed_out=False,
        )
        cache.put_failure(failure)
        reloaded = SweepCache(path)
        assert reloaded.failure_count == 1
        assert reloaded.get_failure("k1") == failure
        assert "RuntimeError" in failure.describe()
        assert len(reloaded) == 0  # failures are not points

    def test_later_point_clears_failure(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = SweepCache(path)
        cache.put_failure(
            CellFailure("k1", "tree", 16, "a", 0, "RuntimeError", "boom")
        )
        from repro.analysis.sweep import SweepPoint

        point = SweepPoint(GraphSpec("tree"), 16, "a", 0, 2, None, 7)
        cache.put_point("k1", point)
        reloaded = SweepCache(path)
        assert reloaded.get_failure("k1") is None
        assert reloaded.get_point("k1") == point


class TestFailureTelemetry:
    def test_sweep_failure_events_emitted(self):
        sink = MemorySink()
        session = ObsSession(
            "unused", RunManifest(run_id="t", kind="test", created_at="t"), sink
        )
        SweepRunner(
            {"metivier": metivier_mis, "broken": broken_mis},
            parallel=False,
            obs=session,
            failure_policy=FailurePolicy(on_error="continue"),
        ).run(SPECS, [16], [0])
        events = [e for e in sink.events if e.kind == EVENT_SWEEP_FAILURE]
        assert len(events) == 1
        assert events[0].data["algorithm"] == "broken"
        assert events[0].data["error_type"] == "NotMaximalError"
        end = [e for e in sink.events if e.kind == EVENT_SWEEP_END]
        assert end[0].data["failed"] == 1
