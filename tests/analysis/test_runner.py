"""Tests for the parallel, cached sweep runtime (repro.analysis.runner)."""

from __future__ import annotations

import pytest

from repro.analysis.cache import SweepCache
from repro.analysis.runner import SweepProgress, SweepRunner, WorkUnit
from repro.analysis.sweep import run_sweep
from repro.errors import NotMaximalError
from repro.graphs.generators import GraphSpec
from repro.mis.luby import luby_b_mis
from repro.mis.metivier import metivier_mis

SPECS = [GraphSpec("tree"), GraphSpec("arb", (2,))]
SIZES = [16, 24]
SEEDS = [0, 1]
ALGORITHMS = {"metivier": metivier_mis, "luby-b": luby_b_mis}


def broken_mis(graph, seed=0):
    """Picklable deliberately-wrong algorithm (empty set is never maximal)."""
    from repro.mis.engine import MISResult

    return MISResult(mis=set(), iterations=0, algorithm="broken", seed=seed)


class TestEnumeration:
    def test_grid_order_is_canonical(self):
        runner = SweepRunner(ALGORITHMS)
        units = runner.enumerate_units(SPECS, SIZES, SEEDS)
        assert len(units) == len(SPECS) * len(SIZES) * len(SEEDS) * len(ALGORITHMS)
        # spec-major, then n, then seed, then algorithm.
        assert units[0] == WorkUnit(SPECS[0], 16, "metivier", 0)
        assert units[1] == WorkUnit(SPECS[0], 16, "luby-b", 0)
        assert units[2] == WorkUnit(SPECS[0], 16, "metivier", 1)

    def test_fingerprints_unique_across_grid(self):
        runner = SweepRunner(ALGORITHMS)
        units = runner.enumerate_units(SPECS, SIZES, SEEDS)
        assert len({u.fingerprint for u in units}) == len(units)


class TestParallelSerialIdentity:
    def test_parallel_bit_identical_to_serial(self):
        # The correctness oracle of the whole design: the keyed RNG makes a
        # point a pure function of its work unit, so process boundaries must
        # not change a single number.
        serial = SweepRunner(ALGORITHMS, parallel=False).run(SPECS, SIZES, SEEDS)
        parallel = SweepRunner(ALGORITHMS, parallel=True, max_workers=4).run(
            SPECS, SIZES, SEEDS
        )
        assert serial.points == parallel.points

    def test_run_sweep_wrapper_matches_serial(self):
        via_wrapper = run_sweep(
            specs=SPECS, sizes=SIZES, algorithms=ALGORITHMS, seeds=SEEDS
        )
        serial = run_sweep(
            specs=SPECS,
            sizes=SIZES,
            algorithms=ALGORITHMS,
            seeds=SEEDS,
            parallel=False,
        )
        assert via_wrapper.points == serial.points

    def test_unpicklable_algorithm_still_runs_in_parallel_mode(self):
        # A lambda cannot cross a process boundary; the runner must execute
        # it in the parent and still return the full, ordered grid.
        algorithms = {
            "metivier": metivier_mis,
            "local": lambda graph, seed=0: metivier_mis(graph, seed=seed),
        }
        result = SweepRunner(algorithms, parallel=True, max_workers=2).run(
            [GraphSpec("tree")], [20], [0, 1]
        )
        assert [p.algorithm for p in result.points] == [
            "metivier",
            "local",
            "metivier",
            "local",
        ]
        for pair in (result.points[0:2], result.points[2:4]):
            assert pair[0].iterations == pair[1].iterations
            assert pair[0].mis_size == pair[1].mis_size

    def test_validation_error_propagates_from_workers(self):
        with pytest.raises(NotMaximalError):
            SweepRunner({"broken": broken_mis}, parallel=True, max_workers=2).run(
                [GraphSpec("tree")], [10, 12], [0]
            )

    def test_one_failed_cell_does_not_discard_healthy_cells(self, tmp_path):
        # One broken cell re-raises — but only after every healthy in-flight
        # cell finished and landed in the cache, so a rerun resumes from the
        # completed work instead of recomputing the whole grid.
        cache_path = tmp_path / "sweep.jsonl"
        algorithms = {"metivier": metivier_mis, "broken": broken_mis}
        with pytest.raises(NotMaximalError):
            SweepRunner(algorithms, parallel=True, max_workers=2, cache=cache_path).run(
                [GraphSpec("tree")], SIZES, SEEDS
            )
        cache = SweepCache(cache_path)
        healthy = len(SIZES) * len(SEEDS)
        assert len(cache) == healthy  # every metivier cell was recorded

    def test_failed_cells_counted_in_progress(self):
        snapshots = []
        algorithms = {"metivier": metivier_mis, "broken": broken_mis}
        with pytest.raises(NotMaximalError):
            SweepRunner(
                algorithms,
                parallel=True,
                max_workers=2,
                progress=lambda p: snapshots.append((p.done, p.failed)),
            ).run([GraphSpec("tree")], [16], [0, 1])
        assert snapshots[-1][1] == 2  # both broken cells surfaced
        text = SweepProgress(total=4, done=2, executed=2, failed=2, elapsed=1.0).render()
        assert "2 failed" in text


class TestCacheResume:
    def test_warm_cache_rerun_executes_nothing(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        calls = []

        def counting(graph, seed=0):
            calls.append(seed)
            return metivier_mis(graph, seed=seed)

        cold = SweepRunner(
            {"metivier": counting}, parallel=False, cache=cache_path
        ).run([GraphSpec("tree")], SIZES, SEEDS)
        executed_cold = len(calls)
        assert executed_cold == len(cold.points) == 4

        snapshots = []
        warm = SweepRunner(
            {"metivier": counting},
            parallel=False,
            cache=cache_path,
            progress=snapshots.append,
        ).run([GraphSpec("tree")], SIZES, SEEDS)
        assert len(calls) == executed_cold  # zero algorithm executions
        assert warm.points == cold.points
        assert snapshots[-1].cached == 4
        assert snapshots[-1].executed == 0

    def test_partial_cache_resumes_missing_points_only(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        calls = []

        def counting(graph, seed=0):
            calls.append(seed)
            return metivier_mis(graph, seed=seed)

        first = SweepRunner(
            {"metivier": counting}, parallel=False, cache=cache_path
        ).run([GraphSpec("tree")], [16], SEEDS)
        assert len(calls) == 2

        # Widen the grid: only the new size's points execute.
        second = SweepRunner(
            {"metivier": counting}, parallel=False, cache=cache_path
        ).run([GraphSpec("tree")], [16, 24], SEEDS)
        assert len(calls) == 4
        assert second.points[:2] == first.points
        assert len(second.points) == 4

    def test_parallel_run_fills_cache_serial_run_reuses_it(self, tmp_path):
        cache_path = tmp_path / "sweep.jsonl"
        parallel = SweepRunner(
            ALGORITHMS, parallel=True, max_workers=4, cache=cache_path
        ).run(SPECS, SIZES, SEEDS)

        snapshots = []
        cached = SweepRunner(
            ALGORITHMS, parallel=False, cache=cache_path, progress=snapshots.append
        ).run(SPECS, SIZES, SEEDS)
        assert cached.points == parallel.points
        assert snapshots[-1].executed == 0
        assert snapshots[-1].cached == len(parallel.points)

    def test_kwargs_are_part_of_the_cache_key(self, tmp_path):
        from repro.core.arb_mis import arb_mis

        cache_path = tmp_path / "sweep.jsonl"
        spec = GraphSpec("arb", (2,))

        def run_with_alpha(alpha):
            return SweepRunner(
                {"arb-mis": arb_mis},
                algorithm_kwargs={"arb-mis": {"alpha": alpha}},
                parallel=False,
                cache=cache_path,
            ).run([spec], [30], [0])

        run_with_alpha(2)
        run_with_alpha(3)
        assert len(SweepCache(cache_path)) == 2  # distinct fingerprints


class TestTelemetry:
    def test_progress_reports_every_point(self):
        snapshots = []
        SweepRunner(
            ALGORITHMS, parallel=False, progress=lambda p: snapshots.append(p.done)
        ).run([GraphSpec("tree")], SIZES, SEEDS)
        total = len(SIZES) * len(SEEDS) * len(ALGORITHMS)
        assert snapshots == list(range(1, total + 1))

    def test_progress_tracks_per_algorithm_wall_time(self):
        last = {}
        SweepRunner(
            ALGORITHMS, parallel=False, progress=lambda p: last.update(vars(p))
        ).run([GraphSpec("tree")], [20], [0])
        assert set(last["algorithm_seconds"]) == set(ALGORITHMS)
        assert all(s >= 0 for s in last["algorithm_seconds"].values())
        assert last["total"] == 2

    def test_render_mentions_progress_and_rate(self):
        progress = SweepProgress(total=10, done=4, executed=3, cached=1, elapsed=2.0)
        text = progress.render()
        assert "4/10" in text
        assert "cached" in text
        assert "pts/s" in text
