"""Tests for sweep export helpers."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.export import (
    read_rows_json,
    sweep_to_rows,
    write_rows_csv,
    write_rows_json,
)
from repro.analysis.sweep import run_sweep
from repro.graphs.generators import GraphSpec
from repro.mis.metivier import metivier_mis


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(
        specs=[GraphSpec("tree")],
        sizes=[20, 40],
        algorithms={"metivier": metivier_mis},
        seeds=[0, 1],
    )


class TestSweepToRows:
    def test_one_row_per_point(self, small_sweep):
        rows = sweep_to_rows(small_sweep)
        assert len(rows) == len(small_sweep.points)

    def test_row_fields(self, small_sweep):
        row = sweep_to_rows(small_sweep)[0]
        assert set(row) == {
            "family",
            "n",
            "algorithm",
            "seed",
            "iterations",
            "congest_rounds",
            "mis_size",
        }
        assert row["family"] == "tree"


class TestCsv:
    def test_round_trip_values(self, small_sweep, tmp_path):
        rows = sweep_to_rows(small_sweep)
        path = tmp_path / "sweep.csv"
        write_rows_csv(rows, path)
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == len(rows)
        assert loaded[0]["algorithm"] == "metivier"
        assert int(loaded[0]["n"]) in (20, 40)

    def test_heterogeneous_keys(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = tmp_path / "h.csv"
        write_rows_csv(rows, path)
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["b"] == ""
        assert loaded[1]["b"] == "3"


class TestJson:
    def test_round_trip(self, small_sweep, tmp_path):
        rows = sweep_to_rows(small_sweep)
        path = tmp_path / "sweep.json"
        write_rows_json(rows, path)
        assert read_rows_json(path) == rows
