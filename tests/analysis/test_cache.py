"""Tests for the sweep results store (repro.analysis.cache)."""

from __future__ import annotations

import json

from repro.analysis.cache import SweepCache, unit_fingerprint
from repro.analysis.sweep import SweepPoint
from repro.graphs.generators import GraphSpec


def _point(spec=GraphSpec("arb", (2,)), n=64, algorithm="arb-mis", seed=3):
    return SweepPoint(
        spec=spec,
        n=n,
        algorithm=algorithm,
        seed=seed,
        iterations=5,
        congest_rounds=21,
        mis_size=30,
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        spec = GraphSpec("tree")
        a = unit_fingerprint(spec, 100, "metivier", 0, {"x": 1})
        b = unit_fingerprint(spec, 100, "metivier", 0, {"x": 1})
        assert a == b

    def test_kwargs_order_independent(self):
        spec = GraphSpec("tree")
        a = unit_fingerprint(spec, 100, "m", 0, {"a": 1, "b": 2})
        b = unit_fingerprint(spec, 100, "m", 0, {"b": 2, "a": 1})
        assert a == b

    def test_every_field_matters(self):
        spec = GraphSpec("arb", (2,))
        base = unit_fingerprint(spec, 64, "arb-mis", 0, {"alpha": 2})
        assert base != unit_fingerprint(GraphSpec("arb", (3,)), 64, "arb-mis", 0, {"alpha": 2})
        assert base != unit_fingerprint(spec, 65, "arb-mis", 0, {"alpha": 2})
        assert base != unit_fingerprint(spec, 64, "metivier", 0, {"alpha": 2})
        assert base != unit_fingerprint(spec, 64, "arb-mis", 1, {"alpha": 2})
        assert base != unit_fingerprint(spec, 64, "arb-mis", 0, {"alpha": 3})


class TestSweepCache:
    def test_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path / "c.jsonl")
        point = _point()
        cache.put_point("k1", point)
        assert cache.get_point("k1") == point
        assert "k1" in cache and len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        cache = SweepCache(tmp_path / "c.jsonl")
        assert cache.get_point("nope") is None

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "c.jsonl"
        SweepCache(path).put_point("k1", _point())
        reloaded = SweepCache(path)
        assert reloaded.get_point("k1") == _point()

    def test_spec_params_survive_serialization(self, tmp_path):
        path = tmp_path / "c.jsonl"
        point = _point(spec=GraphSpec("gnp", (0.05,)), algorithm="metivier")
        SweepCache(path).put_point("k", point)
        restored = SweepCache(path).get_point("k")
        assert restored.spec == GraphSpec("gnp", (0.05,))
        assert restored == point

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        cache = SweepCache(path)
        cache.put_point("k1", _point())
        with path.open("a") as handle:
            handle.write('{"key": "k2", "family": "tr')  # interrupted write
        reloaded = SweepCache(path)
        assert len(reloaded) == 1
        assert reloaded.get_point("k1") is not None

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        path = tmp_path / "c.jsonl"
        cache = SweepCache(path)
        cache.put_point("k", _point(seed=1))
        cache.put_point("k", _point(seed=2))
        assert SweepCache(path).get_point("k").seed == 2

    def test_lines_are_plain_json_objects(self, tmp_path):
        path = tmp_path / "c.jsonl"
        SweepCache(path).put_point("k1", _point())
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["key"] == "k1"
        assert record["iterations"] == 5
