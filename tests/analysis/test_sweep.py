"""Tests for the benchmark sweep harness."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import run_sweep
from repro.graphs.generators import GraphSpec
from repro.mis.luby import luby_b_mis
from repro.mis.metivier import metivier_mis


class TestRunSweep:
    def test_grid_coverage(self):
        result = run_sweep(
            specs=[GraphSpec("tree")],
            sizes=[20, 40],
            algorithms={"metivier": metivier_mis, "luby-b": luby_b_mis},
            seeds=[0, 1],
        )
        # 1 spec x 2 sizes x 2 seeds x 2 algorithms.
        assert len(result.points) == 8

    def test_filter(self):
        result = run_sweep(
            specs=[GraphSpec("tree")],
            sizes=[20],
            algorithms={"metivier": metivier_mis},
            seeds=[0, 1, 2],
        )
        assert len(result.filter(algorithm="metivier", n=20)) == 3
        assert result.filter(algorithm="nope") == []

    def test_summaries(self):
        spec = GraphSpec("tree")
        result = run_sweep(
            specs=[spec],
            sizes=[30],
            algorithms={"metivier": metivier_mis},
            seeds=[0, 1, 2, 3],
        )
        summary = result.iterations_summary(spec, 30, "metivier")
        assert summary.count == 4
        assert summary.mean > 0
        rounds = result.rounds_summary(spec, 30, "metivier")
        assert rounds.mean == pytest.approx(3 * summary.mean)  # 3 rounds/iter fallback

    def test_kwargs_forwarding(self):
        from repro.core.arb_mis import arb_mis

        result = run_sweep(
            specs=[GraphSpec("arb", (2,))],
            sizes=[30],
            algorithms={"arb-mis": arb_mis},
            seeds=[0],
            algorithm_kwargs={"arb-mis": {"alpha": 2}},
        )
        assert result.points[0].mis_size > 0

    def test_validation_catches_bad_algorithm(self):
        from repro.mis.engine import MISResult

        def broken(graph, seed=0):
            return MISResult(mis=set(), iterations=0, algorithm="broken", seed=seed)

        from repro.errors import NotMaximalError

        with pytest.raises(NotMaximalError):
            run_sweep(
                specs=[GraphSpec("tree")],
                sizes=[10],
                algorithms={"broken": broken},
                seeds=[0],
            )
