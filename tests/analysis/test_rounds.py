"""Tests for theoretical round curves and the exponent fitter."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.rounds import (
    barenboim_arb_bound,
    fit_constant,
    fit_growth_exponent,
    ghaffari_bound,
    luby_bound,
    paper_bound,
)


class TestBoundCurves:
    def test_luby_is_log(self):
        assert luby_bound(2**10) == 10

    def test_paper_bound_sublogarithmic_in_n(self):
        # For fixed alpha, paper_bound / luby_bound -> 0 as n grows.
        small_ratio = paper_bound(2**10, 1) / luby_bound(2**10)
        big_ratio = paper_bound(2**40, 1) / luby_bound(2**40)
        assert big_ratio < small_ratio

    def test_paper_bound_poly_alpha(self):
        assert paper_bound(2**20, 2) == pytest.approx(2**9 * paper_bound(2**20, 1))

    def test_paper_bound_custom_exponent(self):
        assert paper_bound(2**20, 2, alpha_exponent=3) == pytest.approx(
            8 * paper_bound(2**20, 1, alpha_exponent=3)
        )

    def test_ghaffari_dominates_paper(self):
        # The paper concedes Ghaffari is faster for all alpha, n.
        for n_exp in (10, 20, 40):
            for alpha in (1, 2, 4):
                assert ghaffari_bound(2**n_exp, alpha) < paper_bound(2**n_exp, alpha)

    def test_barenboim_crossover_in_n(self):
        # The paper: its bound beats Barenboim et al.'s own arboricity
        # algorithm for small alpha and large n (sqrt log n log log n
        # grows slower than log^(2/3) n).
        alpha = 1
        assert paper_bound(2**4096, alpha) < barenboim_arb_bound(2**4096, alpha)


class TestExponentFit:
    def test_recovers_exact_power_law(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [3 * x**1.7 for x in xs]
        exponent, constant = fit_growth_exponent(xs, ys)
        assert exponent == pytest.approx(1.7, abs=1e-9)
        assert constant == pytest.approx(3.0, rel=1e-9)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(1)
        xs = np.linspace(2, 50, 25)
        ys = 2 * xs**0.5 * np.exp(rng.normal(0, 0.05, size=25))
        exponent, _ = fit_growth_exponent(xs, ys)
        assert abs(exponent - 0.5) < 0.1

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([2.0], [4.0])

    def test_zero_values_clamped(self):
        exponent, _ = fit_growth_exponent([1.0, 2.0, 4.0], [0.0, 2.0, 4.0])
        assert math.isfinite(exponent)


class TestFitConstant:
    def test_exact(self):
        constant = fit_constant(lambda x: x**2, [1, 2, 3], [2, 8, 18])
        assert constant == pytest.approx(2.0)

    def test_zero_model(self):
        assert fit_constant(lambda x: 0.0, [1, 2], [1, 2]) == 0.0
