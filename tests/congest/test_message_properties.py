"""Property-based tests (hypothesis) for the CONGEST bit-size model.

``bits_of_payload`` is the measurement every O(log n)-bandwidth claim in
the reproduction rests on, so its algebra is pinned for *all* payloads,
not just fixtures: exact framing arithmetic, strict nesting monotonicity,
the bool-before-int dispatch subtlety, two's-complement width for
negative integers, and independence from set iteration order (documented
in the module docstring of :mod:`repro.congest.message`).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.message import Message, bits_of_payload

# -- strategies --------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.lists(inner, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    ),
    max_leaves=12,
)

# No booleans: False == 0 (and True == 1), so a set built in a different
# insertion order can keep a different *representative* of an equal set —
# {False} is 1 bit, {0} is 2.  Order-independence of the accounting is a
# statement about fixed elements; see the note in repro.congest.message.
hashable_scalars = st.one_of(
    st.none(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=8),
)


# -- framing overhead bounds -------------------------------------------------


@given(items=st.lists(payloads, max_size=6))
@settings(max_examples=200)
def test_sequence_framing_is_exactly_two_bits_per_element(items):
    expected = sum(bits_of_payload(x) + 2 for x in items)
    assert bits_of_payload(items) == expected
    assert bits_of_payload(tuple(items)) == expected


@given(mapping=st.dictionaries(st.text(max_size=6), payloads, max_size=5))
@settings(max_examples=200)
def test_dict_framing_is_exactly_four_bits_per_pair(mapping):
    expected = sum(
        bits_of_payload(k) + bits_of_payload(v) + 4 for k, v in mapping.items()
    )
    assert bits_of_payload(mapping) == expected


@given(payload=payloads)
@settings(max_examples=200)
def test_every_payload_costs_at_least_framing(payload):
    bits = bits_of_payload(payload)
    assert bits >= 0
    if isinstance(payload, (list, tuple)):
        assert bits >= 2 * len(payload)
    if isinstance(payload, dict):
        assert bits >= 4 * len(payload)


# -- nesting monotonicity ----------------------------------------------------


@given(payload=payloads)
@settings(max_examples=200)
def test_wrapping_strictly_increases_size(payload):
    inner = bits_of_payload(payload)
    assert bits_of_payload([payload]) == inner + 2
    assert bits_of_payload((payload,)) == inner + 2
    assert bits_of_payload([payload]) > inner


@given(payload=payloads, depth=st.integers(min_value=1, max_value=6))
@settings(max_examples=100)
def test_nesting_depth_adds_exactly_two_bits_per_level(payload, depth):
    wrapped = payload
    for _ in range(depth):
        wrapped = [wrapped]
    assert bits_of_payload(wrapped) == bits_of_payload(payload) + 2 * depth


# -- bool vs int dispatch ----------------------------------------------------


@given(flag=st.booleans())
def test_bool_is_one_bit_despite_being_an_int(flag):
    # bool subclasses int; the isinstance(bool) check must win.
    assert bits_of_payload(flag) == 1
    assert bits_of_payload(int(flag)) == 2


# -- negative-int width ------------------------------------------------------


@given(value=st.integers(min_value=-(2**128), max_value=2**128))
@settings(max_examples=300)
def test_int_width_is_two_complement_with_sign_bit(value):
    assert bits_of_payload(value) == max(1, abs(value).bit_length()) + 1


@given(value=st.integers(min_value=0, max_value=2**128))
def test_negation_costs_nothing(value):
    assert bits_of_payload(-value) == bits_of_payload(value)


# -- set / frozenset ---------------------------------------------------------


@given(items=st.lists(hashable_scalars, max_size=8))
@settings(max_examples=200)
def test_set_bits_match_elementwise_sum_and_ignore_order(items):
    forward = set(items)
    backward = set()
    for item in reversed(items):
        backward.add(item)
    expected = sum(bits_of_payload(x) + 2 for x in forward)
    assert bits_of_payload(forward) == expected
    assert bits_of_payload(backward) == expected
    assert bits_of_payload(frozenset(items)) == expected


def test_equal_sets_with_different_representatives():
    # The documented Python quirk: equal sets, different elements kept.
    assert {False} == {0}
    assert bits_of_payload({False}) == 3  # 1 element bit + 2 framing
    assert bits_of_payload({0}) == 4  # 2 element bits + 2 framing


# -- Message integration -----------------------------------------------------


@given(payload=payloads)
@settings(max_examples=100)
def test_message_bits_equal_payload_bits(payload):
    assert Message(0, 1, payload).bits == bits_of_payload(payload)
