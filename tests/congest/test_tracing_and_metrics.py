"""Standalone tests for trace recording and metrics objects."""

from __future__ import annotations

import pytest

from repro.congest.faults import CrashSchedule
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.tracing import TraceEvent, TraceRecorder
from repro.obs.sinks import MemorySink


class TestTraceEvent:
    def test_str_with_node_and_detail(self):
        event = TraceEvent(3, "send", node=1, detail={"to": 2, "bits": 8})
        text = str(event)
        assert "[r3]" in text
        assert "node=1" in text
        assert "bits=8" in text

    def test_str_without_node(self):
        assert "node" not in str(TraceEvent(0, "round-end"))

    def test_frozen(self):
        event = TraceEvent(0, "x")
        with pytest.raises(AttributeError):
            event.kind = "y"


class TestTraceRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(0, "send", node=1, to=2)
        recorder.record(0, "halt", node=2)
        recorder.record(1, "send", node=3, to=1)
        assert len(recorder) == 3
        assert len(recorder.of_kind("send")) == 2
        assert len(recorder.for_node(2)) == 1

    def test_max_events_truncates(self):
        recorder = TraceRecorder(max_events=2)
        for i in range(5):
            recorder.record(0, "e", node=i)
        assert len(recorder) == 2
        assert recorder.truncated

    def test_render_limits(self):
        recorder = TraceRecorder()
        for i in range(10):
            recorder.record(i, "tick")
        text = recorder.render(limit=3)
        assert "7 more events" in text

    def test_predicate(self):
        recorder = TraceRecorder(predicate=lambda e: e.node == 5)
        recorder.record(0, "a", node=5)
        recorder.record(0, "a", node=6)
        assert len(recorder) == 1


class TestTruncationSemantics:
    def test_cap_sets_truncated_flag(self):
        recorder = TraceRecorder(max_events=3)
        for i in range(3):
            recorder.record(0, "e", node=i)
        assert not recorder.truncated  # exactly at the cap: nothing lost
        recorder.record(0, "e", node=3)
        assert recorder.truncated
        assert len(recorder) == 3

    def test_predicate_rejects_do_not_count_toward_cap(self):
        recorder = TraceRecorder(
            predicate=lambda e: e.kind == "keep", max_events=2
        )
        for _ in range(50):
            recorder.record(0, "noise")
        recorder.record(0, "keep", node=1)
        recorder.record(0, "keep", node=2)
        # 50 rejected events consumed none of the budget...
        assert len(recorder) == 2
        assert not recorder.truncated
        # ... and only a *kept-worthy* drop flips the flag.
        recorder.record(0, "keep", node=3)
        assert recorder.truncated

    def test_iteration_order_is_record_order(self):
        recorder = TraceRecorder(max_events=4)
        for i in range(9):
            recorder.record(i, "e", node=i)
        assert [e.node for e in recorder] == [0, 1, 2, 3]
        assert [e.node for e in recorder.events] == [0, 1, 2, 3]


class TestSinkForwarding:
    def test_kept_events_reach_sink_without_timestamps(self):
        sink = MemorySink()
        recorder = TraceRecorder(
            predicate=lambda e: e.kind == "send", sink=sink
        )
        recorder.record(0, "send", node=1, to=2, bits=8)
        recorder.record(0, "halt", node=2)  # filtered: never reaches the sink
        recorder.close()
        (event,) = list(sink)
        assert event.kind == "send"
        assert event.round == 0 and event.node == 1
        assert event.data == {"to": 2, "bits": 8}
        assert event.ts is None  # traces stay bit-deterministic (R3)

    def test_buffer_false_streams_only(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink, buffer=False)
        for i in range(5):
            recorder.record(0, "e", node=i)
        assert recorder.events == []  # nothing retained in memory
        assert len(recorder) == 5  # but the count is still truthful
        assert len(sink) == 5

    def test_cap_applies_before_sink(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink, max_events=2)
        for i in range(5):
            recorder.record(0, "e", node=i)
        assert len(sink) == 2


class TestMetrics:
    def test_round_metrics_accumulate(self):
        rm = RoundMetrics(round_index=0)
        rm.record_message(10)
        rm.record_message(30)
        assert rm.messages_sent == 2
        assert rm.bits_sent == 40
        assert rm.max_message_bits == 30

    def test_run_metrics_absorb(self):
        run = RunMetrics(congest_budget_bits=64)
        for i, bits in enumerate((10, 70)):
            rm = RoundMetrics(round_index=i)
            rm.record_message(bits)
            run.absorb(rm)
        assert run.rounds == 2
        assert run.total_bits == 80
        assert run.max_message_bits == 70
        assert run.congest_compliant is False
        assert run.messages_per_round() == [1, 1]

    def test_compliance_none_without_budget(self):
        assert RunMetrics().congest_compliant is None

    def test_summary_string(self):
        run = RunMetrics(congest_budget_bits=128)
        rm = RoundMetrics(round_index=0)
        rm.record_message(100)
        run.absorb(rm)
        assert "OK" in run.summary()

    def test_absorb_start_counts_once_and_only_in_totals(self):
        # Regression pin for the synthetic pre-round: on_start sends enter
        # total_messages/total_bits/max_message_bits exactly once, while
        # rounds, per_round, and messages_per_round() stay untouched.
        run = RunMetrics(congest_budget_bits=64)
        start = RoundMetrics(round_index=-1)
        start.record_message(48)
        start.record_message(16)
        run.absorb_start(start)
        assert run.start_round is start
        assert run.total_messages == 2
        assert run.total_bits == 64
        assert run.max_message_bits == 48
        assert run.rounds == 0
        assert run.per_round == []
        assert run.messages_per_round() == []
        # A subsequent real round adds on top, without re-absorbing start.
        rm = RoundMetrics(round_index=0)
        rm.record_message(8)
        run.absorb(rm)
        assert run.total_messages == 3
        assert run.total_bits == 72
        assert run.rounds == 1
        assert run.messages_per_round() == [1]

    def test_note_phase_accumulates_and_renders(self):
        run = RunMetrics()
        run.note_phase("shattering", 0.5)
        run.note_phase("shattering", 0.25)
        run.note_phase("finishing", 0.1)
        assert run.phase_seconds == {"shattering": 0.75, "finishing": 0.1}
        assert "phases[" in run.summary()
        assert "shattering=0.750s" in run.summary()


class TestCrashSchedule:
    def test_single_and_lookup(self):
        schedule = CrashSchedule.single(3, [1, 2])
        assert schedule.crashing_at(3) == {1, 2}
        assert schedule.crashing_at(4) == set()

    def test_all_crashed_by(self):
        schedule = CrashSchedule({1: {5}, 3: {6}})
        assert schedule.all_crashed_by(0) == set()
        assert schedule.all_crashed_by(2) == {5}
        assert schedule.all_crashed_by(3) == {5, 6}

    def test_add_and_empty(self):
        schedule = CrashSchedule.none()
        assert schedule.is_empty
        schedule.add(2, 7)
        assert not schedule.is_empty
        assert schedule.crashing_at(2) == {7}

    def test_sorted_items(self):
        schedule = CrashSchedule({5: {3, 1}, 2: {9}})
        assert schedule.as_sorted_items() == ((2, (9,)), (5, (1, 3)))
