"""Tests for the synchronous simulator: delivery semantics, halting,
metrics, CONGEST enforcement, and fault injection."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.faults import CrashSchedule
from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.congest.tracing import TraceRecorder
from repro.errors import MessageSizeExceededError, SimulationError


class EchoOnce(NodeAlgorithm):
    """Round 0: broadcast own id.  Round 1: record inbox, halt."""

    name = "echo-once"

    def on_round(self, ctx: NodeContext, inbox):
        if ctx.round_index == 0:
            ctx.broadcast(("id", ctx.node))
        else:
            senders = sorted(m.sender for m in inbox)
            ctx.halt(("saw", tuple(senders)))


class CountDown(NodeAlgorithm):
    """Halts after a node-dependent number of rounds (staggered halting)."""

    def on_round(self, ctx: NodeContext, inbox):
        if ctx.round_index >= ctx.node:
            ctx.halt(("done", ctx.round_index))


class ChattyForever(NodeAlgorithm):
    """Never halts; used to test the round cap."""

    def on_round(self, ctx: NodeContext, inbox):
        ctx.broadcast(("ping",))


class BigTalker(NodeAlgorithm):
    """Sends an oversized message in round 0."""

    def on_round(self, ctx: NodeContext, inbox):
        if ctx.round_index == 0 and ctx.node == 0:
            ctx.broadcast("x" * 500)
        ctx.halt(None)


class PathRelay(NodeAlgorithm):
    """Node 0 emits a token that is relayed down a path; everyone records
    when it passed.  Exercises multi-hop delivery timing."""

    def on_start(self, ctx: NodeContext):
        if ctx.node == 0:
            ctx.send(max(ctx.neighbors), ("token",)) if ctx.neighbors else None

    def on_round(self, ctx: NodeContext, inbox):
        token = [m for m in inbox if m.payload[0] == "token"]
        if ctx.node == 0:
            ctx.halt(("emitted", 0))
            return
        if token:
            forward = [u for u in ctx.neighbors if u > ctx.node]
            if forward:
                ctx.send(forward[0], ("token",))
            ctx.halt(("relayed", ctx.round_index))


class TestDeliverySemantics:
    def test_messages_delivered_next_round(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(EchoOnce())
        # Node 1 hears both endpoints; endpoints hear node 1.
        assert run.outputs[1] == ("saw", (0, 2))
        assert run.outputs[0] == ("saw", (1,))

    def test_relay_timing_along_path(self):
        n = 6
        net = Network(nx.path_graph(n))
        run = SynchronousSimulator(net).run(PathRelay())
        # The token reaches node i at round i-1 (sent during on_start).
        for v in range(1, n):
            assert run.outputs[v] == ("relayed", v - 1)

    def test_send_to_non_neighbor_rejected(self):
        class BadSend(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(ctx.node + 10, ("x",))

        net = Network(nx.path_graph(12))
        with pytest.raises(SimulationError):
            SynchronousSimulator(net).run(BadSend(), max_rounds=2)


class TestHalting:
    def test_all_halt_ends_run(self):
        net = Network(nx.path_graph(4))
        run = SynchronousSimulator(net).run(CountDown())
        assert run.halted
        # Node 3 halts at round 3, so the run lasts 4 rounds.
        assert run.metrics.rounds == 4

    def test_round_cap_stops_nonterminating(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(ChattyForever(), max_rounds=7)
        assert not run.halted
        assert run.metrics.rounds == 7
        assert run.outputs == {}

    def test_halted_node_sends_raise(self):
        class SendAfterHalt(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(None)
                ctx.send(ctx.neighbors[0], ("zombie",))

        net = Network(nx.path_graph(2))
        with pytest.raises(SimulationError):
            SynchronousSimulator(net).run(SendAfterHalt())

    def test_outputs_collected_per_node(self):
        net = Network(nx.path_graph(4))
        run = SynchronousSimulator(net).run(CountDown())
        assert set(run.outputs) == {0, 1, 2, 3}
        assert run.outputs[2] == ("done", 2)


class TestMetrics:
    def test_message_and_bit_totals(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(EchoOnce())
        # Round 0: nodes 0,2 send 1 message each; node 1 sends 2.
        assert run.metrics.total_messages == 4
        assert run.metrics.total_bits > 0
        assert run.metrics.max_message_bits > 0

    def test_per_round_breakdown(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(EchoOnce())
        assert run.metrics.per_round[0].messages_sent == 4
        assert run.metrics.per_round[1].messages_sent == 0

    def test_congest_compliance_flag(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(EchoOnce())
        assert run.metrics.congest_compliant is True

    def test_summary_mentions_budget(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(EchoOnce())
        assert "budget" in run.metrics.summary()


class StartHeavy(NodeAlgorithm):
    """Sends its largest message during ``on_start``; tiny ones afterwards."""

    def on_start(self, ctx: NodeContext):
        ctx.broadcast("x" * 40)

    def on_round(self, ctx: NodeContext, inbox):
        if ctx.round_index == 0:
            ctx.broadcast(("t",))
        else:
            ctx.halt(None)


class TestStartSendMetrics:
    def test_start_sends_count_toward_totals(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(StartHeavy())
        # 4 directed sends at start + 4 in round 0.
        assert run.metrics.start_round is not None
        assert run.metrics.start_round.messages_sent == 4
        assert run.metrics.total_messages == 8
        assert run.metrics.total_bits > run.metrics.start_round.bits_sent

    def test_max_message_bits_sees_start_send(self):
        # The largest message of the whole run is sent during on_start; the
        # E9 compliance numbers must reflect it.
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(StartHeavy())
        assert run.metrics.max_message_bits == 40 * 8
        assert run.metrics.max_message_bits > max(
            rm.max_message_bits for rm in run.metrics.per_round
        )

    def test_start_round_not_counted_as_round(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net).run(StartHeavy())
        # Rounds 0 and 1 only; the synthetic pre-round stays out of per_round.
        assert run.metrics.rounds == 2
        assert [rm.round_index for rm in run.metrics.per_round] == [0, 1]

    def test_oversized_start_send_enforced(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(MessageSizeExceededError):
            SynchronousSimulator(net, enforce_congest=True).run(
                type("Big", (StartHeavy,), {"on_start": lambda self, ctx: ctx.broadcast("x" * 500)})()
            )


class TestCongestEnforcement:
    def test_oversized_message_recorded_without_enforcement(self):
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net, enforce_congest=False).run(BigTalker())
        assert run.metrics.congest_compliant is False

    def test_oversized_message_raises_with_enforcement(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(MessageSizeExceededError):
            SynchronousSimulator(net, enforce_congest=True).run(BigTalker())


class TestTracing:
    def test_trace_records_sends_and_halts(self):
        net = Network(nx.path_graph(3))
        trace = TraceRecorder()
        SynchronousSimulator(net, trace=trace).run(EchoOnce())
        kinds = {e.kind for e in trace}
        assert "send" in kinds
        assert "halt" in kinds
        assert "round-end" in kinds

    def test_trace_predicate_filters(self):
        net = Network(nx.path_graph(3))
        trace = TraceRecorder(predicate=lambda e: e.kind == "halt")
        SynchronousSimulator(net, trace=trace).run(EchoOnce())
        assert all(e.kind == "halt" for e in trace)
        assert len(trace) == 3


class TestCrashFaults:
    def test_crashed_node_stops_participating(self):
        net = Network(nx.path_graph(3))
        schedule = CrashSchedule.single(0, [1])
        run = SynchronousSimulator(net, crash_schedule=schedule).run(EchoOnce())
        assert 1 in run.crashed
        assert 1 not in run.outputs
        # Survivors saw no message from the crashed node.
        assert run.outputs[0] == ("saw", ())
        assert run.outputs[2] == ("saw", ())

    def test_crash_after_send_still_delivers(self):
        # Node 1 crashes at round 1; its round-0 broadcast was already on
        # the wire... but crash-stop drops messages from crashed senders at
        # delivery time, so receivers must NOT see it.
        net = Network(nx.path_graph(3))
        schedule = CrashSchedule.single(1, [1])
        run = SynchronousSimulator(net, crash_schedule=schedule).run(EchoOnce())
        assert run.outputs[0] == ("saw", ())

    def test_run_completes_when_survivors_halt(self):
        net = Network(nx.path_graph(4))
        schedule = CrashSchedule.single(0, [3])
        run = SynchronousSimulator(net, crash_schedule=schedule).run(CountDown())
        assert run.halted
        assert set(run.outputs) == {0, 1, 2}

    def test_halted_then_crashed_node_keeps_output(self):
        # Node 0 halts (decides) at round 0 and crashes at round 2; a decided
        # node's output is irrevocable under crash-stop, so it must survive.
        net = Network(nx.path_graph(4))
        schedule = CrashSchedule.single(2, [0])
        run = SynchronousSimulator(net, crash_schedule=schedule).run(CountDown())
        assert 0 in run.crashed
        assert run.outputs[0] == ("done", 0)
        assert set(run.outputs) == {0, 1, 2, 3}

    def test_crashed_before_halting_still_dropped(self):
        # Node 3 would halt at round 3 but crashes at round 1: no output.
        net = Network(nx.path_graph(4))
        schedule = CrashSchedule.single(1, [3])
        run = SynchronousSimulator(net, crash_schedule=schedule).run(CountDown())
        assert 3 in run.crashed
        assert 3 not in run.outputs
