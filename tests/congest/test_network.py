"""Tests for the Network wrapper."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.errors import GraphError


class TestConstruction:
    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(GraphError):
            Network(g)

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            Network(nx.DiGraph([(0, 1)]))

    def test_relabels_non_integer_nodes(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        net = Network(g)
        assert net.nodes == (0, 1, 2)
        assert net.relabeled("a") == 0

    def test_integer_nodes_kept(self):
        g = nx.path_graph(4)
        net = Network(g)
        assert net.nodes == (0, 1, 2, 3)
        assert net.relabeled(2) == 2


class TestAccessors:
    def test_neighbors_sorted(self):
        g = nx.Graph([(5, 1), (5, 3), (5, 2)])
        net = Network(g)
        assert net.neighbors(5) == (1, 2, 3)

    def test_degree_and_max_degree(self, small_tree):
        net = Network(small_tree)
        for v in net.nodes:
            assert net.degree(v) == small_tree.degree(v)
        assert net.max_degree() == max(d for _, d in small_tree.degree())

    def test_counts(self, arb3_graph):
        net = Network(arb3_graph)
        assert net.node_count == arb3_graph.number_of_nodes()
        assert net.edge_count == arb3_graph.number_of_edges()
        assert len(net) == net.node_count

    def test_contains_and_iter(self):
        net = Network(nx.path_graph(3))
        assert 1 in net
        assert 7 not in net
        assert list(net) == [0, 1, 2]

    def test_empty_graph(self):
        net = Network(nx.Graph())
        assert net.nodes == ()
        assert net.max_degree() == 0

    def test_has_edge(self):
        net = Network(nx.path_graph(3))
        assert net.has_edge(0, 1)
        assert not net.has_edge(0, 2)


class TestSubnetwork:
    def test_induced_subgraph(self):
        net = Network(nx.cycle_graph(6))
        sub = net.subnetwork([0, 1, 2])
        assert sub.nodes == (0, 1, 2)
        assert sub.edge_count == 2  # 0-1, 1-2; the 5-0 edge is cut

    def test_subnetwork_is_independent_copy(self):
        net = Network(nx.path_graph(4))
        sub = net.subnetwork([0, 1])
        assert 3 in net
        assert 3 not in sub
