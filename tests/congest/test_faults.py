"""Tests for the fault-injection layer: crash schedules, message
adversaries, crash-recovery, fault metrics/telemetry, and the async path.

The two properties everything else leans on:

* **Determinism** — same seed + same adversary configuration injects the
  identical fault trace (obs streams diff clean up to timestamps);
* **Codability** — corrupted payloads stay inside the ``bits_of_payload``
  type system, so receivers face *wrong* data, never *malformed* data.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.asynchronous import AlphaSynchronizer
from repro.congest.faults import (
    ComposedAdversary,
    CorruptAdversary,
    CrashSchedule,
    DelayAdversary,
    DropAdversary,
    DuplicateAdversary,
    FaultEvent,
    MessageAdversary,
    _corrupt_value,
    compose,
)
from repro.congest.message import Message, bits_of_payload
from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.errors import ConfigurationError
from repro.graphs.generators import random_tree
from repro.mis.engine import mis_from_outputs
from repro.mis.metivier import MetivierMIS


class EchoForever(NodeAlgorithm):
    """Broadcasts every round; halts at round 5 reporting senders heard."""

    name = "echo-forever"

    def on_round(self, ctx, inbox):
        if ctx.round_index >= 5:
            ctx.halt(("saw", tuple(sorted({m.sender for m in inbox}))))
            return
        ctx.broadcast(("id", ctx.node))


class RecordRestarts(NodeAlgorithm):
    """Counts on_start invocations via the per-node output (wiped state
    means a recovered node reports a fresh count)."""

    name = "record-restarts"

    def on_start(self, ctx):
        ctx.state["rounds_alive"] = 0

    def on_round(self, ctx, inbox):
        ctx.state["rounds_alive"] += 1
        if ctx.round_index >= 9:
            ctx.halt(("alive", ctx.state["rounds_alive"]))


class TestCrashSchedule:
    def test_parse_round_trip(self):
        schedule = CrashSchedule.parse(["3:1,2", "5:7"], ["9:1"])
        assert schedule.as_sorted_items() == ((3, (1, 2)), (5, (7,)))
        assert schedule.recoveries_as_sorted_items() == ((9, (1,)),)
        assert not schedule.is_empty

    @pytest.mark.parametrize("bad", ["", "3", "3:", ":1", "x:1", "3:1,y"])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            CrashSchedule.parse([bad])

    def test_all_crashed_by(self):
        schedule = CrashSchedule.parse(["2:0", "4:1"])
        assert schedule.all_crashed_by(1) == set()
        assert schedule.all_crashed_by(2) == {0}
        assert schedule.all_crashed_by(9) == {0, 1}

    def test_none_is_empty(self):
        assert CrashSchedule.none().is_empty


class TestAdversaryUnits:
    MSG = Message(3, 4, ("id", 3))

    def test_null_adversary_is_identity(self):
        outcomes, faults = MessageAdversary().perturb(self.MSG, 1, 0, seed=0)
        assert outcomes == [(0, self.MSG)]
        assert faults == []

    def test_drop_rate_extremes(self):
        always = DropAdversary(1.0)
        never = DropAdversary(0.0)
        for r in range(20):
            assert always.perturb(self.MSG, r, 0, seed=1)[0] == []
            assert never.perturb(self.MSG, r, 0, seed=1)[1] == []

    def test_drop_rate_is_approximately_respected(self):
        adversary = DropAdversary(0.25)
        drops = 0
        trials = 0
        for sender in range(40):
            for r in range(40):
                msg = Message(sender, sender + 1, ("x",))
                _, faults = adversary.perturb(msg, r, 0, seed=7)
                drops += len(faults)
                trials += 1
        assert 0.18 < drops / trials < 0.32

    def test_perturb_is_deterministic(self):
        adversary = compose(
            DropAdversary(0.2), DuplicateAdversary(0.2), DelayAdversary(0.2)
        )
        for r in range(30):
            first = adversary.perturb(self.MSG, r, 0, seed=5)
            second = adversary.perturb(self.MSG, r, 0, seed=5)
            assert first == second

    def test_per_edge_index_decorrelates_coins(self):
        # Two messages on the same edge in the same round get independent
        # coins; with enough trials both fates must occur at index 1.
        adversary = DropAdversary(0.5)
        fates = set()
        for r in range(50):
            fates.add(len(adversary.perturb(self.MSG, r, 1, seed=3)[0]))
        assert fates == {0, 1}

    def test_duplicate_delivers_extra_copies(self):
        adversary = DuplicateAdversary(1.0, copies=2)
        outcomes, faults = adversary.perturb(self.MSG, 0, 0, seed=0)
        assert outcomes == [(0, self.MSG)] * 3
        assert faults == [FaultEvent("duplicate", 0, 3, 4, detail=2)]

    def test_delay_is_bounded(self):
        adversary = DelayAdversary(1.0, max_delay=3)
        for r in range(30):
            outcomes, faults = adversary.perturb(self.MSG, r, 0, seed=2)
            (delay, msg), = outcomes
            assert 1 <= delay <= 3
            assert msg == self.MSG
            assert faults[0].detail == delay

    def test_delay_extra_latency_matches_rounds(self):
        adversary = DelayAdversary(1.0, max_delay=3, latency_scale=2.0)
        for r in range(10):
            outcomes, _ = adversary.perturb(Message(1, 2, None), r, 0, seed=4)
            latency = adversary.extra_latency(4, 1, 2, r)
            assert latency == 2.0 * outcomes[0][0]

    def test_composition_accumulates_delay_and_faults(self):
        adversary = ComposedAdversary(
            (DelayAdversary(1.0, max_delay=1), DelayAdversary(1.0, max_delay=1))
        )
        outcomes, faults = adversary.perturb(self.MSG, 0, 0, seed=0)
        assert outcomes == [(2, self.MSG)]
        assert [f.kind for f in faults] == ["delay", "delay"]

    def test_compose_degenerate_arities(self):
        assert isinstance(compose(), MessageAdversary)
        single = DropAdversary(0.1)
        assert compose(single) is single


class TestCorruption:
    @pytest.mark.parametrize(
        "payload",
        [
            True,
            False,
            0,
            17,
            -3,
            2.5,
            0.0,
            "abc",
            ("mis", 4),
            [1, 2, 3],
            {3, 5},
            frozenset({1}),
            {"k": 7},
        ],
    )
    def test_corruption_preserves_type_and_codability(self, payload):
        corrupted = _corrupt_value(payload, key=12345)
        assert type(corrupted) is type(payload)
        if payload not in ((), [], set(), frozenset(), {}):
            assert corrupted != payload
        # Still codable, and no more than marginally wider: one extra bit
        # per flipped int, never an unbounded blowup.
        assert bits_of_payload(corrupted) <= bits_of_payload(payload) + 1

    def test_empty_string_becomes_nonempty_marker(self):
        # The one shape with nothing to flip in place: corruption injects
        # a single control char rather than silently passing through.
        assert _corrupt_value("", key=1) == "\x01"

    def test_empty_containers_pass_through(self):
        adversary = CorruptAdversary(1.0)
        msg = Message(0, 1, ())
        outcomes, faults = adversary.perturb(msg, 0, 0, seed=0)
        assert outcomes == [(0, msg)]
        assert faults == []

    def test_corrupt_adversary_changes_payload(self):
        adversary = CorruptAdversary(1.0)
        msg = Message(0, 1, ("id", 6))
        outcomes, faults = adversary.perturb(msg, 0, 0, seed=0)
        (delay, out), = outcomes
        assert delay == 0
        assert out.payload != msg.payload
        assert out.sender == 0 and out.receiver == 1
        assert faults[0].kind == "corrupt"


class TestSimulatorIntegration:
    def graph(self):
        return random_tree(24, seed=3)

    def test_faults_counted_in_metrics(self):
        net = Network(self.graph())
        sim = SynchronousSimulator(net, seed=1, adversary=DropAdversary(0.3))
        run = sim.run(EchoForever())
        assert run.metrics.faults_injected > 0
        assert sum(run.metrics.fault_counts.values()) == run.metrics.faults_injected
        assert set(run.metrics.fault_counts) == {"drop"}
        assert "faults=" in run.metrics.summary()

    def test_fault_trace_is_seed_deterministic(self):
        def faults_of(seed):
            net = Network(self.graph())
            sim = SynchronousSimulator(net, seed=seed, adversary=DropAdversary(0.2))
            return sim.run(EchoForever()).metrics.faults_injected

        assert faults_of(5) == faults_of(5)
        assert faults_of(5) != faults_of(6) or faults_of(5) > 0

    def test_delayed_messages_arrive_later_not_never(self):
        net = Network(nx.path_graph(2))
        sim = SynchronousSimulator(
            net, seed=0, adversary=DelayAdversary(1.0, max_delay=2)
        )
        run = sim.run(EchoForever())
        assert run.halted
        # Every round-<5 broadcast eventually lands: the halting round
        # still hears the peer via the deferred buffer.
        assert run.outputs[0] == ("saw", (1,))

    def test_duplicates_do_not_count_as_wire_traffic(self):
        net = Network(self.graph())
        plain = SynchronousSimulator(net, seed=2).run(EchoForever())
        noisy = SynchronousSimulator(
            Network(self.graph()),
            seed=2,
            adversary=DuplicateAdversary(1.0, copies=3),
        ).run(EchoForever())
        # The adversary manufactures copies at delivery; the senders'
        # metered traffic is identical to the fault-free run.
        assert noisy.metrics.total_messages == plain.metrics.total_messages

    def test_crash_recovery_reruns_on_start_with_wiped_state(self):
        schedule = CrashSchedule.parse(["3:0"], ["6:0"])
        net = Network(nx.path_graph(3))
        run = SynchronousSimulator(net, seed=0, crash_schedule=schedule).run(
            RecordRestarts(), max_rounds=50
        )
        assert run.recovered == frozenset({0})
        assert run.crashed == frozenset()
        # Alive rounds 0,1,2 then wiped; alive again 6..9 → counter restarts.
        assert run.outputs[0] == ("alive", 4)
        assert run.outputs[1] == ("alive", 10)

    def test_recovery_waits_out_idle_rounds(self):
        # Everyone halts before the recovery round; the run must idle
        # until the scheduled rejoin instead of exiting early.
        schedule = CrashSchedule.parse(["1:0"], ["12:0"])
        net = Network(nx.path_graph(2))
        run = SynchronousSimulator(net, seed=0, crash_schedule=schedule).run(
            MetivierMIS(), max_rounds=200
        )
        assert 0 in run.recovered
        assert run.outputs[0] is not None

    def test_mis_under_drop_still_halts(self):
        graph = self.graph()
        run = SynchronousSimulator(
            Network(graph), seed=4, adversary=DropAdversary(0.05)
        ).run(MetivierMIS(), max_rounds=5000)
        assert run.halted


class TestAsyncAdversary:
    def test_drop_faults_counted(self):
        graph = random_tree(20, seed=1)
        run = AlphaSynchronizer(
            Network(graph), seed=3, adversary=DropAdversary(0.1)
        ).run(MetivierMIS())
        assert run.halted
        assert run.faults_injected > 0
        assert set(run.fault_counts) == {"drop"}

    def test_latency_only_delay_preserves_outputs(self):
        # A delay adversary manifests as link latency on the async path;
        # the α-synchronizer absorbs it, so outputs match the fault-free
        # synchronous run exactly — the synchronizer theorem under faults.
        graph = random_tree(30, seed=5)
        sync = SynchronousSimulator(Network(graph), seed=7).run(MetivierMIS())
        asyn = AlphaSynchronizer(
            Network(graph),
            seed=7,
            adversary=DelayAdversary(0.5, max_delay=3, latency_scale=2.0),
        ).run(MetivierMIS())
        assert mis_from_outputs(asyn.outputs) == mis_from_outputs(sync.outputs)

    def test_async_fault_trace_deterministic(self):
        graph = random_tree(20, seed=2)

        def counts():
            run = AlphaSynchronizer(
                Network(graph),
                seed=9,
                adversary=compose(DropAdversary(0.1), CorruptAdversary(0.05)),
            ).run(MetivierMIS())
            return run.fault_counts

        assert counts() == counts()
