"""Tests for CONGEST message bit accounting."""

from __future__ import annotations

import pytest

from repro.congest.message import Message, bits_of_payload, congest_budget_bits
from repro.errors import MessageSizeExceededError


class TestBitsOfPayload:
    def test_none_and_bool(self):
        assert bits_of_payload(None) == 1
        assert bits_of_payload(True) == 1
        assert bits_of_payload(False) == 1

    def test_small_int(self):
        assert bits_of_payload(0) == 2  # 1 bit + sign
        assert bits_of_payload(1) == 2
        assert bits_of_payload(255) == 9

    def test_int_grows_with_magnitude(self):
        assert bits_of_payload(2**40) > bits_of_payload(2**10)

    def test_negative_int(self):
        assert bits_of_payload(-5) == bits_of_payload(5)

    def test_float(self):
        assert bits_of_payload(3.14) == 64

    def test_string_utf8(self):
        assert bits_of_payload("ab") == 16
        assert bits_of_payload("é") == 16  # two UTF-8 bytes

    def test_tuple_framing(self):
        # Two ints of 2 bits each + 2 bits framing per element.
        assert bits_of_payload((1, 1)) == 8

    def test_dict(self):
        assert bits_of_payload({1: 1}) == 2 + 2 + 4

    def test_nested(self):
        nested = (1, (2, 3))
        flat = (1, 2, 3)
        assert bits_of_payload(nested) > bits_of_payload((1,))
        assert isinstance(bits_of_payload(flat), int)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            bits_of_payload(object())


class TestCongestBudget:
    def test_scales_with_log_n(self):
        assert congest_budget_bits(2**10) == 32 * 10
        assert congest_budget_bits(2**20) == 32 * 20

    def test_small_n(self):
        assert congest_budget_bits(1) == 32
        assert congest_budget_bits(2) == 32

    def test_custom_constant(self):
        assert congest_budget_bits(2**10, constant=8) == 80


class TestMessage:
    def test_bits_computed_at_construction(self):
        m = Message(0, 1, (1, 2))
        assert m.bits == bits_of_payload((1, 2))

    def test_check_budget_passes(self):
        Message(0, 1, 5).check_budget(limit=100)

    def test_check_budget_raises_with_details(self):
        m = Message(3, 4, "x" * 100)
        with pytest.raises(MessageSizeExceededError) as info:
            m.check_budget(limit=64)
        assert info.value.sender == 3
        assert info.value.receiver == 4
        assert info.value.bits == 800
        assert info.value.limit == 64

    def test_frozen(self):
        m = Message(0, 1, 5)
        with pytest.raises(AttributeError):
            m.payload = 6
