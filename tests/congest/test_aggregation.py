"""Tests for BFS/leader-election/convergecast primitives."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.aggregation import (
    bfs_forest,
    component_sizes_via_convergecast,
)
from repro.graphs.generators import bounded_arboricity_graph, random_tree


class TestLeaderElectionBFS:
    def test_leader_is_component_minimum(self):
        g = nx.union(random_tree(15, seed=1), nx.relabel_nodes(random_tree(10, seed=2), {i: i + 50 for i in range(10)}))
        forest = bfs_forest(g)
        for v, leader in forest.leader_of.items():
            component = nx.node_connected_component(g, v)
            assert leader == min(component)

    def test_distances_are_bfs_distances(self):
        g = bounded_arboricity_graph(40, 2, seed=3)
        forest = bfs_forest(g)
        leader = min(g.nodes())
        true_distances = nx.single_source_shortest_path_length(g, leader)
        for v in g.nodes():
            assert forest.distance_of[v] == true_distances[v]

    def test_parents_form_trees(self):
        g = bounded_arboricity_graph(40, 2, seed=4)
        forest = bfs_forest(g)
        # Exactly one root (parent None) per component; parent edges real.
        roots = [v for v, p in forest.parent_of.items() if p is None]
        assert len(roots) == nx.number_connected_components(g)
        for v, p in forest.parent_of.items():
            if p is not None:
                assert g.has_edge(v, p)
                assert forest.distance_of[v] == forest.distance_of[p] + 1

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(5)
        forest = bfs_forest(g)
        assert forest.leader_of == {5: 5}
        assert forest.parent_of == {5: None}

    def test_components_grouping(self):
        g = nx.union(nx.path_graph(4), nx.relabel_nodes(nx.path_graph(3), {i: i + 10 for i in range(3)}))
        groups = bfs_forest(g).components()
        assert groups[0] == {0, 1, 2, 3}
        assert groups[10] == {10, 11, 12}


class TestConvergecast:
    def test_sizes_match_networkx(self):
        g = nx.union(random_tree(20, seed=5), nx.relabel_nodes(random_tree(12, seed=6), {i: i + 100 for i in range(12)}))
        sizes, rounds = component_sizes_via_convergecast(g)
        truth = {min(c): len(c) for c in nx.connected_components(g)}
        assert sizes == truth
        assert rounds > 0

    def test_path(self):
        sizes, _ = component_sizes_via_convergecast(nx.path_graph(9))
        assert sizes == {0: 9}

    def test_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        sizes, _ = component_sizes_via_convergecast(g)
        assert sizes == {0: 1, 1: 1, 2: 1}

    def test_dense_graph(self):
        g = nx.complete_graph(12)
        sizes, _ = component_sizes_via_convergecast(g)
        assert sizes == {0: 12}
