"""Tests for the asynchronous simulator and the α-synchronizer.

The headline property: running any of the library's synchronous node
programs under the synchronizer, over adversarially random link delays,
produces outputs *identical* to the synchronous simulator's — the
executable form of the synchronizer correctness theorem.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.asynchronous import AlphaSynchronizer, AsynchronousNetwork
from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.errors import SimulationError
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.mis.engine import mis_from_outputs
from repro.mis.ghaffari import GhaffariMIS
from repro.mis.luby import LubyBMIS
from repro.mis.metivier import MetivierMIS
from repro.mis.validation import assert_valid_mis


class TestAsynchronousNetwork:
    def test_fifo_per_link(self):
        net = Network(nx.path_graph(2))
        async_net = AsynchronousNetwork(net, seed=1)
        # Adversarial: second message gets a *smaller* raw delay.
        delays = iter([5.0, 0.1])
        async_net._delay_fn = lambda s, r, rng: next(delays)
        async_net.send(0, 1, "first")
        async_net.send(0, 1, "second")
        first = async_net.pop()
        second = async_net.pop()
        assert first.payload == "first"
        assert second.payload == "second"
        assert second.time > first.time

    def test_rejects_nonpositive_delay(self):
        net = Network(nx.path_graph(2))
        async_net = AsynchronousNetwork(net, seed=1, delay_fn=lambda s, r, rng: 0.0)
        with pytest.raises(SimulationError):
            async_net.send(0, 1, "x")

    def test_pop_empty(self):
        net = Network(nx.path_graph(2))
        assert AsynchronousNetwork(net).pop() is None

    def test_event_ordering_by_time(self):
        net = Network(nx.star_graph(3))
        async_net = AsynchronousNetwork(net, seed=2)
        delays = {(0, 1): 3.0, (0, 2): 1.0, (0, 3): 2.0}
        async_net._delay_fn = lambda s, r, rng: delays[(s, r)]
        for u in (1, 2, 3):
            async_net.send(0, u, u)
        order = [async_net.pop().payload for _ in range(3)]
        assert order == [2, 3, 1]


class TestSynchronizerEquivalence:
    @pytest.mark.parametrize("program_cls", [MetivierMIS, LubyBMIS, GhaffariMIS])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_matches_synchronous_on_tree(self, program_cls, seed):
        graph = random_tree(40, seed=7)
        net = Network(graph)
        sync = SynchronousSimulator(net, seed=seed).run(program_cls())
        asyn = AlphaSynchronizer(net, seed=seed).run(program_cls())
        assert asyn.halted
        assert mis_from_outputs(asyn.outputs) == mis_from_outputs(sync.outputs)

    def test_matches_on_arb_graph(self):
        graph = bounded_arboricity_graph(80, 2, seed=4)
        net = Network(graph)
        sync = SynchronousSimulator(net, seed=5).run(MetivierMIS())
        asyn = AlphaSynchronizer(net, seed=5).run(MetivierMIS())
        assert mis_from_outputs(asyn.outputs) == mis_from_outputs(sync.outputs)

    def test_different_delay_seeds_same_output(self):
        # The synchronizer's whole point: delays must not affect outputs.
        graph = bounded_arboricity_graph(60, 2, seed=1)
        net = Network(graph)
        results = set()
        for delay_seed in range(4):
            synchronizer = AlphaSynchronizer(net, seed=9)
            synchronizer.async_net = AsynchronousNetwork(net, seed=delay_seed * 77)
            run = synchronizer.run(MetivierMIS())
            results.add(frozenset(mis_from_outputs(run.outputs)))
        assert len(results) == 1

    def test_extreme_delay_skew(self):
        # One link is 100x slower than the rest.
        graph = random_tree(30, seed=2)
        net = Network(graph)

        def skewed(s, r, rng):
            return 100.0 if (s, r) == (0, 1) or (r, s) == (0, 1) else 0.5 + float(rng.random())

        sync = SynchronousSimulator(net, seed=3).run(MetivierMIS())
        asyn = AlphaSynchronizer(net, seed=3, delay_fn=skewed).run(MetivierMIS())
        assert mis_from_outputs(asyn.outputs) == mis_from_outputs(sync.outputs)

    def test_output_is_valid_mis(self):
        graph = bounded_arboricity_graph(70, 3, seed=6)
        net = Network(graph)
        run = AlphaSynchronizer(net, seed=6).run(MetivierMIS())
        assert_valid_mis(graph, mis_from_outputs(run.outputs))

    def test_isolated_nodes_halt(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        run = AlphaSynchronizer(Network(g), seed=0).run(MetivierMIS())
        assert run.halted
        assert set(run.outputs) == {0, 1, 2, 3}

    def test_pulse_count_matches_round_count(self):
        graph = random_tree(25, seed=8)
        net = Network(graph)
        sync = SynchronousSimulator(net, seed=1).run(MetivierMIS())
        asyn = AlphaSynchronizer(net, seed=1).run(MetivierMIS())
        # Pulses cover exactly the rounds the synchronous run needed.
        assert asyn.pulses == sync.metrics.rounds

    def test_message_overhead_constant_factor(self):
        # alpha-synchronizer: acks + safes per payload message => the
        # event count is a small multiple of the synchronous message count.
        graph = bounded_arboricity_graph(50, 2, seed=3)
        net = Network(graph)
        sync = SynchronousSimulator(net, seed=2).run(MetivierMIS())
        asyn = AlphaSynchronizer(net, seed=2).run(MetivierMIS())
        payload_messages = sync.metrics.total_messages
        # acks double payloads; safe/done add ~2m per pulse.
        upper = 2 * payload_messages + 3 * 2 * graph.number_of_edges() * (asyn.pulses + 2)
        assert asyn.events_processed <= upper
