"""Tests for the ReadKFamily data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.readk.family import ReadKFamily, shared_parent_family


def _two_indicator_family() -> ReadKFamily:
    fam = ReadKFamily()
    for i in range(3):
        fam.add_base(f"x{i}")
    fam.add_indicator("y0", ["x0", "x1"], lambda v: v["x0"] > v["x1"])
    fam.add_indicator("y1", ["x1", "x2"], lambda v: v["x1"] > v["x2"])
    return fam


class TestDeclaration:
    def test_duplicate_base_rejected(self):
        fam = ReadKFamily()
        fam.add_base("x")
        with pytest.raises(ConfigurationError):
            fam.add_base("x")

    def test_duplicate_indicator_rejected(self):
        fam = _two_indicator_family()
        with pytest.raises(ConfigurationError):
            fam.add_indicator("y0", ["x0"], lambda v: True)

    def test_unknown_base_rejected(self):
        fam = ReadKFamily()
        fam.add_base("x")
        with pytest.raises(ConfigurationError):
            fam.add_indicator("y", ["x", "missing"], lambda v: True)

    def test_size_and_names(self):
        fam = _two_indicator_family()
        assert fam.size == 2
        assert fam.base_names == ("x0", "x1", "x2")


class TestReadParameter:
    def test_shared_base_counts(self):
        fam = _two_indicator_family()
        # x1 is read by both indicators; x0, x2 by one each.
        assert fam.read_counts() == {"x0": 1, "x1": 2, "x2": 1}
        assert fam.read_parameter() == 2

    def test_duplicate_reads_in_one_indicator_count_once(self):
        fam = ReadKFamily()
        fam.add_base("x")
        fam.add_indicator("y", ["x", "x"], lambda v: v["x"] > 0.5)
        assert fam.read_parameter() == 1

    def test_empty_family_defaults_to_one(self):
        assert ReadKFamily().read_parameter() == 1


class TestSampling:
    def test_sample_returns_all_indicators(self):
        fam = _two_indicator_family()
        rng = np.random.Generator(np.random.Philox(key=1))
        outcome = fam.sample(rng)
        assert set(outcome) == {"y0", "y1"}
        assert all(isinstance(v, bool) for v in outcome.values())

    def test_sample_matrix_shape_and_dtype(self):
        fam = _two_indicator_family()
        matrix = fam.sample_matrix(trials=50, seed=0)
        assert matrix.shape == (50, 2)
        assert matrix.dtype == bool

    def test_sample_matrix_reproducible(self):
        fam = _two_indicator_family()
        assert np.array_equal(fam.sample_matrix(20, seed=3), fam.sample_matrix(20, seed=3))

    def test_marginals_near_half(self):
        # Pr[x0 > x1] = 1/2 for iid uniforms.
        fam = _two_indicator_family()
        marginals = fam.marginals(trials=4000, seed=1)
        assert np.all(np.abs(marginals - 0.5) < 0.05)

    def test_custom_sampler(self):
        fam = ReadKFamily()
        fam.add_base("x", sampler=lambda rng: 1.0)
        fam.add_indicator("y", ["x"], lambda v: v["x"] > 0.5)
        rng = np.random.Generator(np.random.Philox(key=1))
        assert fam.sample(rng)["y"] is True


class TestSharedParentFamily:
    def test_read_parameter_equals_sharing(self):
        for sharing in (1, 2, 3):
            fam = shared_parent_family(6, children_per_indicator=3, sharing=sharing)
            assert fam.read_parameter() == sharing

    def test_indicator_count(self):
        fam = shared_parent_family(5, 2, 2)
        assert fam.size == 5

    def test_every_indicator_has_children(self):
        fam = shared_parent_family(4, 3, 2)
        for ind in fam.indicators:
            # reads = own parent variable + 3 children
            assert len(ind.reads) == 4

    def test_invalid_sharing_rejected(self):
        with pytest.raises(ConfigurationError):
            shared_parent_family(3, 2, sharing=0)
        with pytest.raises(ConfigurationError):
            shared_parent_family(3, 2, sharing=4)

    def test_indicator_semantics(self):
        # With one parent and one child, Y = [child > parent], so the
        # marginal should be ~1/2.
        fam = shared_parent_family(8, 1, 1)
        marginals = fam.marginals(trials=4000, seed=2)
        assert np.all(np.abs(marginals - 0.5) < 0.06)

    def test_marginal_increases_with_children(self):
        # More children => more likely some child beats the parent.
        few = shared_parent_family(6, 1, 1).marginals(2000, seed=3).mean()
        many = shared_parent_family(6, 5, 1).marginals(2000, seed=3).mean()
        assert many > few
