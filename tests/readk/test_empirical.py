"""Tests for the Monte-Carlo validation of the read-k bounds.

These are the unit-test-sized versions of experiments E4/E5: on synthetic
families with known k, the empirical probabilities must respect the
closed-form bounds.
"""

from __future__ import annotations

import pytest

from repro.readk.empirical import (
    estimate_conjunction_probability,
    estimate_lower_tail,
    wilson_upper_bound,
)
from repro.readk.family import shared_parent_family


class TestWilson:
    def test_zero_successes_still_positive(self):
        assert wilson_upper_bound(0, 1000) > 0.0

    def test_contains_point_estimate(self):
        assert wilson_upper_bound(300, 1000) > 0.3

    def test_no_trials_vacuous(self):
        assert wilson_upper_bound(0, 0) == 1.0

    def test_tightens_with_trials(self):
        assert wilson_upper_bound(10, 1000) < wilson_upper_bound(1, 100)


class TestConjunctionEstimate:
    def test_bound_holds_on_shared_parent_family(self):
        fam = shared_parent_family(8, children_per_indicator=2, sharing=2)
        est = estimate_conjunction_probability(fam, trials=4000, seed=1)
        assert est.k == 2
        assert est.n == 8
        assert est.bound_holds

    def test_independent_reference_below_bound(self):
        # p^n <= p^(n/k): independence is the best case.
        fam = shared_parent_family(6, 2, 3)
        est = estimate_conjunction_probability(fam, trials=2000, seed=2)
        assert est.independent_reference <= est.bound + 1e-12

    def test_explicit_marginal_override(self):
        fam = shared_parent_family(6, 2, 2)
        est = estimate_conjunction_probability(fam, trials=500, seed=3, marginal=0.9)
        assert est.bound == pytest.approx(0.9 ** (6 / 2))

    def test_slack_infinite_when_event_never_seen(self):
        # 12 indicators each needing "child beats parent"; all at once is
        # rare enough to miss in 200 trials sometimes — force it with an
        # impossible marginal scenario instead: use many indicators.
        fam = shared_parent_family(40, 1, 1)
        est = estimate_conjunction_probability(fam, trials=50, seed=4)
        if est.empirical == 0.0:
            assert est.slack == float("inf")
        else:
            assert est.slack >= 1.0


class TestTailEstimate:
    def test_bounds_hold(self):
        fam = shared_parent_family(30, 2, 3)
        est = estimate_lower_tail(fam, delta=0.5, trials=3000, seed=5)
        assert est.bounds_hold

    def test_chernoff_reference_tighter(self):
        fam = shared_parent_family(30, 2, 3)
        est = estimate_lower_tail(fam, delta=0.5, trials=1000, seed=6)
        assert est.chernoff_reference <= est.bound_form2

    def test_threshold_matches_delta(self):
        fam = shared_parent_family(20, 2, 2)
        est = estimate_lower_tail(fam, delta=0.25, trials=500, seed=7)
        assert est.threshold == pytest.approx(0.75 * est.expectation)

    def test_k_detected(self):
        fam = shared_parent_family(10, 2, 4)
        est = estimate_lower_tail(fam, delta=0.5, trials=200, seed=8)
        assert est.k == 4

    def test_small_delta_tail_larger(self):
        # A tighter threshold (smaller delta) is hit more often.
        fam = shared_parent_family(30, 2, 2)
        tight = estimate_lower_tail(fam, delta=0.05, trials=2000, seed=9)
        loose = estimate_lower_tail(fam, delta=0.6, trials=2000, seed=9)
        assert tight.empirical >= loose.empirical
