"""Tests for the closed-form read-k bounds (paper Theorems 1.1 / 1.2)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.readk.bounds import (
    azuma_lower_tail,
    chernoff_lower_tail,
    form2_from_form1,
    read_k_conjunction_bound,
    read_k_lower_tail_form1,
    read_k_lower_tail_form2,
)


class TestConjunctionBound:
    def test_k1_matches_independence(self):
        assert read_k_conjunction_bound(0.5, 10, 1) == pytest.approx(0.5**10)

    def test_exact_formula(self):
        assert read_k_conjunction_bound(0.5, 10, 2) == pytest.approx(0.5**5)

    def test_monotone_in_k(self):
        values = [read_k_conjunction_bound(0.3, 12, k) for k in (1, 2, 3, 6)]
        assert values == sorted(values)

    def test_monotone_in_p(self):
        assert read_k_conjunction_bound(0.2, 10, 2) < read_k_conjunction_bound(0.8, 10, 2)

    def test_p_zero_and_one(self):
        assert read_k_conjunction_bound(0.0, 5, 2) == 0.0
        assert read_k_conjunction_bound(1.0, 5, 2) == 1.0

    def test_clamped_to_one(self):
        assert read_k_conjunction_bound(0.999, 1, 100) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            read_k_conjunction_bound(1.5, 5, 2)
        with pytest.raises(ConfigurationError):
            read_k_conjunction_bound(0.5, 0, 2)
        with pytest.raises(ConfigurationError):
            read_k_conjunction_bound(0.5, 5, 0)


class TestTailForm1:
    def test_exact_formula(self):
        assert read_k_lower_tail_form1(0.1, 100, 2) == pytest.approx(
            math.exp(-2 * 0.01 * 100 / 2)
        )

    def test_k1_is_hoeffding(self):
        assert read_k_lower_tail_form1(0.1, 100, 1) == pytest.approx(math.exp(-2.0))

    def test_decreasing_in_n(self):
        assert read_k_lower_tail_form1(0.1, 200, 2) < read_k_lower_tail_form1(0.1, 100, 2)

    def test_increasing_in_k(self):
        assert read_k_lower_tail_form1(0.1, 100, 4) > read_k_lower_tail_form1(0.1, 100, 2)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            read_k_lower_tail_form1(0.0, 100, 2)


class TestTailForm2:
    def test_exact_formula(self):
        assert read_k_lower_tail_form2(0.5, 40, 2) == pytest.approx(
            math.exp(-0.25 * 40 / 4)
        )

    def test_chernoff_is_k1(self):
        assert chernoff_lower_tail(0.5, 40) == read_k_lower_tail_form2(0.5, 40, 1)

    def test_readk_weaker_than_chernoff(self):
        for k in (2, 5, 10):
            assert read_k_lower_tail_form2(0.5, 40, k) > chernoff_lower_tail(0.5, 40)

    def test_zero_expectation_vacuous(self):
        assert read_k_lower_tail_form2(0.5, 0.0, 3) == 1.0

    def test_negative_expectation_rejected(self):
        with pytest.raises(ConfigurationError):
            read_k_lower_tail_form2(0.5, -1.0, 2)


class TestForm2Derivation:
    def test_derivation_consistent_when_mean_high(self):
        # With p-bar >= 1/4 the Form (1) route is at least as strong as the
        # stated Form (2); the paper calls the derivation "routine".
        n, k = 200, 3
        expectation = 0.5 * n  # p-bar = 1/2
        delta = 0.4
        via_form1 = form2_from_form1(delta, expectation, n, k)
        stated_form2 = read_k_lower_tail_form2(delta, expectation, k)
        assert via_form1 <= stated_form2

    def test_vacuous_for_zero_expectation(self):
        assert form2_from_form1(0.5, 0.0, 100, 2) == 1.0


class TestAzumaComparison:
    def test_exact_formula(self):
        assert azuma_lower_tail(10.0, 100, 2) == pytest.approx(
            math.exp(-100.0 / (2 * 100 * 4))
        )

    def test_readk_beats_azuma_when_m_large(self):
        # Gavinsky et al.'s point: Azuma pays for all m base variables.
        # Family: n indicators, m = 10n bases, k = 2, deviation t = delta*E.
        n, k = 100, 2
        m = 10 * n
        expectation = n / 2
        delta = 0.5
        t = delta * expectation
        readk = read_k_lower_tail_form2(delta, expectation, k)
        azuma = azuma_lower_tail(t, m, k)
        assert readk < azuma

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            azuma_lower_tail(0.0, 10, 2)
        with pytest.raises(ConfigurationError):
            azuma_lower_tail(1.0, 0, 2)
