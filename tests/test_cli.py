"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.family == "arb"
        assert args.algorithm == "arb-mis"
        assert args.profile == "practical"

    def test_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--family", "nonsense"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "arb-mis" in out
        assert "planar" in out

    def test_run_validates_and_prints(self, capsys):
        code = main(
            ["run", "--family", "tree", "--n", "80", "--algorithm", "metivier", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[validated]" in out
        assert "metivier" in out

    def test_run_arb_mis_with_report(self, capsys):
        code = main(
            [
                "run",
                "--family",
                "arb",
                "--alpha",
                "2",
                "--n",
                "120",
                "--algorithm",
                "arb-mis",
                "--report",
            ]
        )
        assert code == 0
        assert "CONGEST rounds" in capsys.readouterr().out

    def test_run_with_linial_finishing(self, capsys):
        code = main(
            [
                "run",
                "--family",
                "arb",
                "--alpha",
                "2",
                "--n",
                "100",
                "--finishing",
                "linial",
            ]
        )
        assert code == 0

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--family",
                "tree",
                "--sizes",
                "40,80",
                "--algorithms",
                "metivier,luby-b",
                "--seeds",
                "0,1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metivier" in out and "luby-b" in out
        assert "40" in out and "80" in out

    def test_sweep_serial_with_cache_and_progress(self, tmp_path, capsys):
        cache = tmp_path / "sweep.jsonl"
        argv = [
            "sweep",
            "--family",
            "tree",
            "--sizes",
            "30,60",
            "--algorithms",
            "metivier",
            "--seeds",
            "0,1",
            "--serial",
            "--cache",
            str(cache),
            "--progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "metivier" in first.out
        assert "points" in first.err  # progress telemetry on stderr
        assert cache.exists()
        # Second run resumes from the store and prints the same table.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "4 cached" in second.err

    def test_sweep_parallel_matches_serial_table(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--family",
            "tree",
            "--sizes",
            "30",
            "--algorithms",
            "metivier,luby-b",
            "--seeds",
            "0,1",
        ]
        assert main(argv) == 0
        parallel_out = capsys.readouterr().out
        assert main(argv + ["--serial"]) == 0
        assert capsys.readouterr().out == parallel_out

    def test_certify_planar(self, capsys):
        code = main(["certify", "--family", "planar", "--n", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pseudoarboricity" in out
        assert "[3, 4]" in out or "[3, 3]" in out

    def test_run_paper_profile(self, capsys):
        code = main(
            [
                "run",
                "--family",
                "tree",
                "--n",
                "60",
                "--algorithm",
                "arb-mis",
                "--alpha",
                "1",
                "--profile",
                "paper",
            ]
        )
        assert code == 0


class TestObsIntegration:
    def test_progress_and_telemetry_never_touch_stdout(self, tmp_path, capsys, monkeypatch):
        # stdout is the machine-readable contract: with every telemetry
        # channel on, it still carries only the result table.
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        argv = [
            "sweep", "--family", "tree", "--sizes", "30",
            "--algorithms", "metivier", "--seeds", "0",
            "--serial", "--progress", "--obs-dir", str(tmp_path / "obs"),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "[sweep]" not in captured.out
        assert "pts/s" not in captured.out
        assert "[obs]" not in captured.out
        assert captured.out.lstrip().startswith("iterations over seeds")
        assert "[sweep]" in captured.err and "[obs] wrote" in captured.err

    def test_run_obs_dir_emits_reconstructible_artifacts(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest
        from repro.obs.summary import read_events, resolve_streams, summarize_events

        obs_root = tmp_path / "obs"
        argv = [
            "run", "--family", "arb", "--alpha", "2", "--n", "80",
            "--algorithm", "arb-mis", "--obs-dir", str(obs_root),
        ]
        assert main(argv) == 0
        (stream,) = resolve_streams(obs_root)
        manifest = RunManifest.load(stream.parent / "manifest.json")
        assert manifest.kind == "run"
        assert manifest.params["algorithm"] == "arb-mis"
        records = read_events(stream)
        summary = summarize_events(records)
        assert summary.runs == 1
        # The stream alone reconstructs the measured round count...
        (end,) = [r for r in records if r["kind"] == "run-end"]
        assert summary.total_rounds == end["rounds"] > 0
        # ... and arb-mis phases show up as wall-clock timers.
        assert "shattering" in summary.phase_seconds
        assert "finishing" in summary.phase_seconds

    def test_obs_subcommand_forwards(self, tmp_path, capsys):
        obs_root = tmp_path / "obs"
        assert main(
            ["run", "--family", "tree", "--n", "40",
             "--algorithm", "metivier", "--obs-dir", str(obs_root)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(obs_root)]) == 0
        assert "runs:          1" in capsys.readouterr().out


class TestExportCommands:
    def test_export_csv(self, tmp_path, capsys):
        out = tmp_path / "points.csv"
        code = main(
            [
                "export",
                "--family",
                "tree",
                "--sizes",
                "30,60",
                "--algorithms",
                "metivier",
                "--seeds",
                "0,1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        import csv

        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["algorithm"] == "metivier"

    def test_export_json(self, tmp_path, capsys):
        out = tmp_path / "points.json"
        code = main(
            [
                "export",
                "--family",
                "tree",
                "--sizes",
                "30",
                "--algorithms",
                "metivier,luby-b",
                "--seeds",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        import json

        points = json.loads(out.read_text())
        assert {p["algorithm"] for p in points} == {"metivier", "luby-b"}

    def test_export_jsonl(self, tmp_path, capsys):
        out = tmp_path / "points.jsonl"
        code = main(
            [
                "export",
                "--family",
                "tree",
                "--sizes",
                "30",
                "--algorithms",
                "metivier",
                "--seeds",
                "0,1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        import json

        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 2
        assert all(row["algorithm"] == "metivier" for row in lines)

    def test_workload_round_trip(self, tmp_path, capsys):
        out = tmp_path / "w.json"
        code = main(
            ["workload", "--family", "arb", "--alpha", "2", "--n", "50", "--output", str(out)]
        )
        assert code == 0
        from repro.graphs.io import read_workload

        graph, metadata = read_workload(out)
        assert graph.number_of_nodes() == 50
        assert metadata["family"] == "arb"
        assert metadata["alpha"] == 2


class TestFaultInjectionCLI:
    def test_fault_knobs_parse(self):
        args = build_parser().parse_args(
            ["run", "--crash", "2:0,1", "--crash", "5:7",
             "--recover", "9:0", "--drop-rate", "0.1"]
        )
        assert args.crash == ["2:0,1", "5:7"]
        assert args.recover == ["9:0"]
        assert args.drop_rate == 0.1
        assert args.no_repair is False

    def test_faultfree_defaults_leave_fast_path(self):
        args = build_parser().parse_args(["run"])
        assert args.crash is None and args.recover is None
        assert args.drop_rate == args.corrupt_rate == 0.0

    def test_run_with_crash_and_drop(self, capsys):
        code = main(
            ["run", "--family", "tree", "--n", "60", "--algorithm", "metivier",
             "--crash", "2:0,1", "--recover", "8:0", "--drop-rate", "0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crashed=1" in out
        assert "OK" in out

    def test_crash_schedule_echoed_into_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest
        from repro.obs.summary import resolve_streams

        obs_root = tmp_path / "obs"
        assert main(
            ["run", "--family", "tree", "--n", "50", "--algorithm", "metivier",
             "--crash", "3:1,2", "--recover", "7:1",
             "--drop-rate", "0.02", "--obs-dir", str(obs_root)]
        ) == 0
        (stream,) = resolve_streams(obs_root)
        manifest = RunManifest.load(stream.parent / "manifest.json")
        assert manifest.params["crashes"] == [[3, [1, 2]]]
        assert manifest.params["recoveries"] == [[7, [1]]]
        assert manifest.params["adversary"] == "drop"

    def test_bad_crash_spec_raises_configuration_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "--family", "tree", "--n", "20", "--crash", "nope"])

    def test_sweep_policy_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--on-error", "continue", "--retries", "2",
             "--cell-timeout", "1.5"]
        )
        assert args.on_error == "continue"
        assert args.retries == 2
        assert args.cell_timeout == 1.5

    def test_sweep_continues_past_failures(self, tmp_path, capsys, monkeypatch):
        # A registered always-failing algorithm must not sink the sweep
        # under --on-error continue; its cells surface on stderr.
        from repro.mis import registry

        def doomed(graph, seed=0, **kwargs):
            raise RuntimeError("injected")

        registry.register_algorithm("doomed", doomed)
        try:
            code = main(
                ["sweep", "--family", "tree", "--sizes", "24",
                 "--algorithms", "metivier,doomed", "--seeds", "0",
                 "--serial", "--on-error", "continue",
                 "--cache", str(tmp_path / "c.jsonl")]
            )
        finally:
            registry.unregister_algorithm("doomed")
        captured = capsys.readouterr()
        assert code == 0
        assert "FAILED" in captured.err
        assert "iterations over seeds" in captured.out
