"""Tests for the maximal matching subpackage."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import AlgorithmError
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.matching.greedy import greedy_matching
from repro.matching.israeli_itai import (
    israeli_itai_matching,
    israeli_itai_matching_congest,
)
from repro.matching.validation import (
    assert_valid_maximal_matching,
    is_matching,
    is_maximal_matching,
    normalize_matching,
)
from repro.matching.via_mis import matching_via_line_graph_mis


class TestValidation:
    def test_empty_matching_on_edgeless(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        assert is_maximal_matching(g, set())

    def test_valid_matching(self, path5):
        assert is_matching(path5, {(0, 1), (2, 3)})
        assert is_maximal_matching(path5, {(0, 1), (2, 3)})

    def test_shared_endpoint_detected(self, path5):
        assert not is_matching(path5, {(0, 1), (1, 2)})

    def test_non_edge_detected(self, path5):
        assert not is_matching(path5, {(0, 2)})

    def test_non_maximal_detected(self, path5):
        assert is_matching(path5, {(1, 2)})
        assert not is_maximal_matching(path5, {(1, 2)})

    def test_assert_messages(self, path5):
        with pytest.raises(AlgorithmError, match="matched twice"):
            assert_valid_maximal_matching(path5, {(0, 1), (1, 2)})
        with pytest.raises(AlgorithmError, match="not maximal"):
            assert_valid_maximal_matching(path5, {(0, 1)})

    def test_normalize(self):
        assert normalize_matching([(3, 1), (2, 5)]) == {(1, 3), (2, 5)}


class TestGreedy:
    def test_deterministic_default(self, arb3_graph):
        assert greedy_matching(arb3_graph) == greedy_matching(arb3_graph)

    def test_always_maximal(self, assorted_graph):
        assert_valid_maximal_matching(assorted_graph, greedy_matching(assorted_graph))

    def test_shuffled_still_maximal(self, arb3_graph):
        for seed in range(4):
            assert_valid_maximal_matching(arb3_graph, greedy_matching(arb3_graph, seed=seed))


class TestIsraeliItai:
    def test_maximal_on_assorted(self, assorted_graph):
        result = israeli_itai_matching(assorted_graph, seed=3)
        assert_valid_maximal_matching(assorted_graph, result.matching)

    def test_reproducible(self, arb3_graph):
        assert (
            israeli_itai_matching(arb3_graph, seed=5).matching
            == israeli_itai_matching(arb3_graph, seed=5).matching
        )

    def test_logarithmic_iterations(self):
        import math

        g = bounded_arboricity_graph(2000, 3, seed=1)
        result = israeli_itai_matching(g, seed=1)
        assert result.iterations <= 12 * math.log2(2000)

    def test_single_edge(self):
        g = nx.Graph([(0, 1)])
        result = israeli_itai_matching(g, seed=0)
        assert result.matching == {(0, 1)}

    def test_empty_graph(self):
        result = israeli_itai_matching(nx.Graph(), seed=0)
        assert result.matching == set()
        assert result.iterations == 0

    def test_star_matches_one_edge(self):
        g = nx.star_graph(10)
        result = israeli_itai_matching(g, seed=2)
        assert len(result.matching) == 1
        assert_valid_maximal_matching(g, result.matching)

    def test_size_within_factor_two_of_maximum(self, arb3_graph):
        # Any maximal matching is a 2-approximation of maximum matching.
        maximum = len(nx.max_weight_matching(arb3_graph, maxcardinality=True))
        result = israeli_itai_matching(arb3_graph, seed=1)
        assert len(result.matching) >= maximum / 2

    def test_congest_engine_maximal(self, assorted_graph):
        result = israeli_itai_matching_congest(assorted_graph, seed=4)
        assert_valid_maximal_matching(assorted_graph, result.matching)

    def test_dual_engine_identity(self, assorted_graph):
        fast = israeli_itai_matching(assorted_graph, seed=6)
        slow = israeli_itai_matching_congest(assorted_graph, seed=6)
        assert fast.matching == slow.matching

    def test_dual_engine_identity_across_seeds(self, small_tree):
        for seed in range(5):
            fast = israeli_itai_matching(small_tree, seed=seed)
            slow = israeli_itai_matching_congest(small_tree, seed=seed)
            assert fast.matching == slow.matching

    def test_summary(self, path5):
        result = israeli_itai_matching(path5, seed=0)
        assert "israeli-itai" in result.summary()


class TestLineGraphReduction:
    def test_maximal_via_reduction(self, assorted_graph):
        result = matching_via_line_graph_mis(assorted_graph, seed=2)
        assert_valid_maximal_matching(assorted_graph, result.matching)

    def test_empty(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        assert matching_via_line_graph_mis(g, seed=0).matching == set()

    def test_triangle(self, triangle):
        result = matching_via_line_graph_mis(triangle, seed=1)
        assert len(result.matching) == 1

    def test_agrees_with_direct_on_maximality(self, small_tree):
        direct = israeli_itai_matching(small_tree, seed=7)
        reduced = matching_via_line_graph_mis(small_tree, seed=7)
        assert_valid_maximal_matching(small_tree, direct.matching)
        assert_valid_maximal_matching(small_tree, reduced.matching)
