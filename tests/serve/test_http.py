"""Tests for the stdlib HTTP/JSON binding.

A real listener is bound on an ephemeral port and driven with
``http.client`` from a worker thread — no third-party HTTP client, per
the no-new-dependencies rule.  The assertions pin the route table, the
typed-error → status-code mapping, and the ``Retry-After`` backpressure
header.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket

from repro.serve.http import HttpFrontend
from repro.serve.server import MISService, ServeConfig


def run_with_frontend(scenario):
    """Boot service + frontend, run ``scenario(port)`` in a thread."""

    async def main():
        service = MISService(ServeConfig(retries=0, backoff_base=0.0))
        frontend = HttpFrontend(service)
        await frontend.start("127.0.0.1", 0)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, scenario, frontend.port, service
            )
        finally:
            await frontend.close()

    return asyncio.run(main())


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        headers_out = dict(response.getheaders())
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError:
            decoded = raw.decode()
        return response.status, decoded, headers_out
    finally:
        conn.close()


class TestRoutes:
    def test_session_lifecycle_over_http(self):
        def scenario(port, service):
            status, body, _ = request(
                port,
                "POST",
                "/v1/sessions",
                {"name": "s", "edges": [[u, u + 1] for u in range(8)], "seed": 1},
            )
            assert status == 200
            assert body["ok"] and body["result"]["mis_size"] > 0

            status, body, _ = request(port, "GET", "/v1/sessions")
            assert status == 200 and body["result"]["sessions"] == ["s"]

            status, body, _ = request(port, "GET", "/v1/sessions/s/mis")
            assert status == 200 and "mis" in body["result"]

            status, body, _ = request(
                port,
                "POST",
                "/v1/sessions/s/mutations",
                {"mutations": [{"op": "add-edge", "u": 0, "v": 5}]},
            )
            assert status == 200
            assert body["result"]["mode"] in ("repair", "recompute")

            status, body, _ = request(port, "DELETE", "/v1/sessions/s")
            assert status == 200 and body["result"]["dropped"] == "s"

            status, body, _ = request(port, "GET", "/v1/sessions/s/mis")
            assert status == 404
            assert body["error"]["code"] == "session-not-found"

        run_with_frontend(scenario)

    def test_probes_and_metrics(self):
        def scenario(port, service):
            status, body, _ = request(port, "GET", "/healthz")
            assert status == 200 and body["status"] == "ok"

            status, body, _ = request(port, "GET", "/readyz")
            assert status == 200 and body["ready"] is True

            status, text, headers = request(port, "GET", "/metrics")
            assert status == 200
            assert isinstance(text, str)
            assert "repro_serve_requests_total" in text
            assert headers["Content-Type"].startswith("text/plain")

        run_with_frontend(scenario)

    def test_unknown_route_is_404(self):
        def scenario(port, service):
            status, body, _ = request(port, "GET", "/nope")
            assert status == 404 and body["error"]["code"] == "no-route"

        run_with_frontend(scenario)


def raw_request(port, data: bytes) -> bytes:
    """Send raw bytes, read until the server closes the connection."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


class TestFraming:
    def test_malformed_content_length_is_400_and_closes(self):
        def scenario(port, service):
            raw = raw_request(
                port,
                b"GET /healthz HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 400 ")
            assert b"Connection: close" in raw

        run_with_frontend(scenario)

    def test_negative_content_length_is_400(self):
        def scenario(port, service):
            raw = raw_request(
                port,
                b"GET /healthz HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 400 ")

        run_with_frontend(scenario)

    def test_oversized_body_is_413_and_closes(self):
        def scenario(port, service):
            # The body is never sent: the server must refuse on the
            # declared length (and close) instead of truncating the
            # read and desyncing the keep-alive stream.
            raw = raw_request(
                port,
                b"POST /v1/sessions HTTP/1.1\r\n"
                b"Content-Length: 9000000\r\n\r\n",
            )
            assert raw.startswith(b"HTTP/1.1 413 ")
            assert b"payload-too-large" in raw
            assert b"Connection: close" in raw

        run_with_frontend(scenario)


class TestErrorStatuses:
    def test_conflict_and_bad_request(self):
        def scenario(port, service):
            request(port, "POST", "/v1/sessions", {"name": "s"})
            status, body, _ = request(port, "POST", "/v1/sessions", {"name": "s"})
            assert status == 409 and body["error"]["code"] == "session-exists"

            status, body, _ = request(
                port,
                "POST",
                "/v1/sessions/s/mutations",
                {"mutations": [{"op": "frobnicate", "u": 1}]},
            )
            assert status == 400 and body["error"]["code"] == "bad-request"

            # Empty mutation list reaches the service and is typed there.
            status, body, _ = request(
                port, "POST", "/v1/sessions/s/mutations", {"mutations": []}
            )
            assert status == 400 and body["error"]["code"] == "bad-request"

        run_with_frontend(scenario)

    def test_deadline_maps_to_504(self):
        def scenario(port, service):
            request(
                port,
                "POST",
                "/v1/sessions",
                {"name": "s", "edges": [[u, u + 1] for u in range(8)]},
            )
            status, body, _ = request(
                port,
                "POST",
                "/v1/sessions/s/mutations",
                {
                    "mutations": [{"op": "add-edge", "u": 0, "v": 5}],
                    "deadline_s": 1e-9,
                },
            )
            assert status == 504
            assert body["error"]["code"] == "deadline-exceeded"

        run_with_frontend(scenario)

    def test_queue_full_carries_retry_after(self):
        def scenario(port, service):
            request(port, "POST", "/v1/sessions", {"name": "s"})
            # Pin the service at its watermark so admission rejects.
            service._inflight = service.config.queue_limit
            try:
                status, body, headers = request(
                    port,
                    "POST",
                    "/v1/sessions/s/mutations",
                    {"mutations": [{"op": "add-edge", "u": 0, "v": 5}]},
                )
            finally:
                service._inflight = 0
            assert status == 429
            assert body["error"]["code"] == "queue-full"
            assert float(headers["Retry-After"]) > 0

        run_with_frontend(scenario)
