"""Property-based tests for the serving layer (Hypothesis).

Two properties the whole design leans on:

* **Validity under arbitrary churn** — for any mutation sequence, both
  the incremental-repair path and the recompute-only path maintain a
  valid MIS after every epoch, and a session that mixes the two via the
  damage-cap ladder is valid as well.
* **Same-seed determinism** — driving the same seeded workload twice in
  lockstep produces identical obs event streams up to timestamps.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings, strategies as st

from repro.mis.validation import assert_valid_mis
from repro.obs.manifest import RunManifest
from repro.obs.session import ObsSession
from repro.obs.sinks import MemorySink
from repro.obs.summary import diff_streams
from repro.serve.incremental import GraphSession, Mutation
from repro.serve.loadgen import LoadGenConfig, drive
from repro.serve.server import MISService, ServeConfig

_NODES = 12

_raw_mutation = st.tuples(
    st.sampled_from(["add-edge", "remove-edge", "add-node", "remove-node"]),
    st.integers(0, _NODES - 1),
    st.integers(0, _NODES - 1),
)

_batches = st.lists(
    st.lists(_raw_mutation, min_size=1, max_size=5), min_size=1, max_size=6
)


def _materialize(raw_batches):
    """Raw draws → Mutation batches (self-loop edge draws become no-ops)."""
    batches = []
    for raw in raw_batches:
        batch = []
        for op, u, v in raw:
            if op in ("add-edge", "remove-edge"):
                if u == v:
                    continue
                batch.append(Mutation(op, u, v))
            else:
                batch.append(Mutation(op, u))
        if batch:
            batches.append(batch)
    return batches


class TestValidityUnderChurn:
    @settings(max_examples=30, deadline=None)
    @given(raw=_batches, seed=st.integers(0, 2**16))
    def test_repair_and_recompute_both_valid(self, raw, seed):
        batches = _materialize(raw)
        # repair_damage_cap=1.0 never falls back; cap=0.0 always does.
        repairing = GraphSession("r", seed=seed, repair_damage_cap=1.0)
        recomputing = GraphSession("c", seed=seed, repair_damage_cap=0.0)
        for batch in batches:
            repairing.apply_epoch(list(batch))
            recomputing.apply_epoch(list(batch))
            assert_valid_mis(repairing.graph, set(repairing.mis))
            assert_valid_mis(recomputing.graph, set(recomputing.mis))
            # Identical graphs regardless of how the MIS was maintained.
            assert repairing.fingerprint == recomputing.fingerprint

    @settings(max_examples=20, deadline=None)
    @given(raw=_batches, seed=st.integers(0, 2**16))
    def test_ladder_mix_stays_valid(self, raw, seed):
        session = GraphSession("m", seed=seed, repair_damage_cap=0.4)
        for batch in _materialize(raw):
            report = session.apply_epoch(list(batch))
            assert report.mode in ("repair", "recompute")
            assert_valid_mis(session.graph, set(session.mis))


def _drive_once(seed: int):
    """One lockstep drive against a fresh service; returns event dicts."""
    sink = MemorySink()
    manifest = RunManifest(run_id="prop", kind="test", created_at="t")
    obs = ObsSession("unused", manifest, sink)

    async def scenario():
        service = MISService(
            ServeConfig(retries=0, backoff_base=0.0), obs=obs
        )
        try:
            config = LoadGenConfig(seed=seed, nodes=24, epochs=5, churn=3)
            report = await drive(service, config)
            assert report.unhandled == 0
            return report.to_dict()
        finally:
            await service.close()

    report = asyncio.run(scenario())
    return report, [event.to_dict() for event in sink.events]


class TestSameSeedDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_obs_streams_identical_up_to_timestamps(self, seed):
        report_a, events_a = _drive_once(seed)
        report_b, events_b = _drive_once(seed)
        assert report_a == report_b
        assert events_a, "drive should emit obs events"
        diff = diff_streams(events_a, events_b)
        assert diff.identical, diff.differences[:5]
