"""Tests for the deterministic load generator.

Workload generation must be a pure function of the config (the E21
benchmark and the same-seed determinism suite both lean on that), and
``drive`` must answer every submission — the smoke invariant is
``unhandled == 0`` even under overload with injected faults.
"""

from __future__ import annotations

import asyncio

from repro.serve.loadgen import (
    LoadGenConfig,
    arrival_offsets,
    drive,
    initial_edges,
    mutation_batches,
)
from repro.serve.server import MISService, ServeConfig


def run(coro):
    return asyncio.run(coro)


class TestWorkloadDeterminism:
    def test_initial_edges_reproducible(self):
        config = LoadGenConfig(seed=3)
        assert initial_edges(config) == initial_edges(config)
        assert initial_edges(config) != initial_edges(LoadGenConfig(seed=4))

    def test_mutation_batches_reproducible(self):
        config = LoadGenConfig(seed=3, epochs=10, churn=5)
        a = mutation_batches(config)
        b = mutation_batches(config)
        assert a == b
        assert len(a) == 10
        assert all(len(batch) == 5 for batch in a)
        assert mutation_batches(LoadGenConfig(seed=4, epochs=10, churn=5)) != a

    def test_mutations_never_self_loop(self):
        for batch in mutation_batches(LoadGenConfig(seed=7, epochs=30, churn=8)):
            for m in batch:
                if m.op in ("add-edge", "remove-edge"):
                    assert m.u != m.v

    def test_arrival_offsets_monotone_and_reproducible(self):
        config = LoadGenConfig(seed=5, arrival_rate_hz=100.0)
        offsets = arrival_offsets(config, 50)
        assert offsets == arrival_offsets(config, 50)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        # Mean inter-arrival should be in the right ballpark of 1/rate.
        mean = offsets[-1] / 50
        assert 0.2 / 100.0 < mean < 5.0 / 100.0


class TestDrive:
    def test_lockstep_answers_everything(self):
        async def scenario():
            service = MISService(ServeConfig(retries=1, backoff_base=0.0))
            try:
                config = LoadGenConfig(seed=1, nodes=30, epochs=6, churn=3)
                report = await drive(service, config)
                # create + per-epoch (mutate + query)
                assert report.submitted == 1 + 6 * 2
                assert report.unhandled == 0
                assert report.status_counts.get("ok", 0) == report.submitted
                assert sum(report.epoch_modes.values()) >= 6
            finally:
                await service.close()

        return run(scenario())

    def test_injected_faults_are_answered_not_raised(self):
        async def scenario():
            service = MISService(ServeConfig(retries=1, backoff_base=0.0))
            try:
                config = LoadGenConfig(seed=1, nodes=30, epochs=6, churn=3)
                report = await drive(
                    service,
                    config,
                    deadline_violations=2,
                    engine_failures=1,
                )
                assert report.unhandled == 0
                assert report.status_counts.get("deadline", 0) == 2
                assert report.error_codes.get("deadline-exceeded", 0) == 2
                # The injected failure was retried away, not surfaced.
                assert service.counters.retries == 1
            finally:
                await service.close()

        return run(scenario())

    def test_open_loop_burst_is_bounded(self):
        async def scenario():
            service = MISService(
                ServeConfig(retries=0, backoff_base=0.0, queue_limit=6)
            )
            try:
                config = LoadGenConfig(seed=2, nodes=30, epochs=15, churn=3)
                report = await drive(
                    service, config, lockstep=False, time_scale=0.0
                )
                assert report.unhandled == 0
                assert report.submitted == 1 + 15 * 2
                # The watermark held and overflow was answered explicitly.
                assert service.counters.queue_peak <= 6
                answered = sum(report.status_counts.values())
                assert answered == report.submitted
            finally:
                await service.close()

        return run(scenario())

    def test_same_seed_lockstep_reports_identical(self):
        async def one_run():
            service = MISService(ServeConfig(retries=0, backoff_base=0.0))
            try:
                config = LoadGenConfig(seed=9, nodes=30, epochs=8, churn=4)
                report = await drive(service, config)
                return report.to_dict()
            finally:
                await service.close()

        assert run(one_run()) == run(one_run())
