"""Tests for the serving layer's algorithmic core: mutations, update
repair, transactional epochs, and the incremental → recompute ladder."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.parameters import ROUNDS_PER_ITERATION
from repro.mis.validation import assert_valid_mis
from repro.serve.errors import BadRequestError
from repro.serve.incremental import (
    ComputeAborted,
    GraphSession,
    Mutation,
    RepairBudgetExceeded,
    apply_mutations,
    graph_fingerprint,
    mutations_from_records,
    rollback_mutations,
    update_repair,
)


def _raw_mutation(op, u, v=None):
    """A Mutation bypassing __post_init__ validation (tests only)."""
    m = object.__new__(Mutation)
    object.__setattr__(m, "op", op)
    object.__setattr__(m, "u", u)
    object.__setattr__(m, "v", v)
    return m


class TestMutation:
    def test_unknown_op_rejected(self):
        with pytest.raises(BadRequestError):
            Mutation("frobnicate", 1)

    def test_edge_ops_need_both_endpoints(self):
        with pytest.raises(BadRequestError):
            Mutation("add-edge", 1)

    def test_round_trips_through_dict(self):
        m = Mutation("add-edge", 1, 2)
        assert Mutation.from_dict(m.to_dict()) == m

    def test_self_loop_rejected_at_parse_time(self):
        # Parse-time rejection: a self-loop must never reach a batch
        # where it could fail mid-application.
        with pytest.raises(BadRequestError):
            Mutation("add-edge", 3, 3)
        with pytest.raises(BadRequestError):
            Mutation.from_dict({"op": "add-edge", "u": 3, "v": 3})

    def test_malformed_record_rejected(self):
        with pytest.raises(BadRequestError):
            Mutation.from_dict({"op": "add-edge", "u": "x", "v": 2})
        with pytest.raises(BadRequestError):
            mutations_from_records([{"u": 1}])


class TestApplyMutations:
    def test_damaged_set_covers_endpoints(self):
        g = nx.path_graph(4)
        damaged = apply_mutations(g, [Mutation("add-edge", 0, 3)])
        assert damaged == {0, 3}

    def test_removed_node_damages_former_neighbors(self):
        g = nx.star_graph(4)  # hub 0
        damaged = apply_mutations(g, [Mutation("remove-node", 0)])
        assert damaged == {1, 2, 3, 4}
        assert not g.has_node(0)

    def test_idempotent_noops(self):
        g = nx.path_graph(3)
        damaged = apply_mutations(
            g,
            [
                Mutation("add-edge", 0, 1),  # already present
                Mutation("remove-edge", 0, 2),  # absent
                Mutation("remove-node", 99),  # unknown
            ],
        )
        # Present-edge re-adds still touch the endpoints; true no-ops don't.
        assert damaged == {0, 1}
        assert sorted(g.edges) == [(0, 1), (1, 2)]

    def test_self_loop_rejected_at_apply_time(self):
        # Defense in depth behind the parse-time check: a mutation built
        # outside the validating constructor still cannot apply.
        with pytest.raises(BadRequestError):
            apply_mutations(nx.Graph(), [_raw_mutation("add-edge", 5, 5)])

    def test_rollback_restores_graph_exactly(self):
        g = nx.gnp_random_graph(20, 0.2, seed=1)
        before_fp = graph_fingerprint(g)
        undo = []
        apply_mutations(
            g,
            [
                Mutation("add-edge", 0, 19),
                Mutation("add-edge", 100, 101),  # creates both nodes
                Mutation("remove-node", 3),
                Mutation("remove-edge", 1, 2),
                Mutation("add-node", 55),
                Mutation("remove-node", 55),
            ],
            undo=undo,
        )
        rollback_mutations(g, undo)
        assert graph_fingerprint(g) == before_fp


class TestUpdateRepair:
    def test_empty_damage_is_free(self):
        g = nx.path_graph(5)
        report = update_repair(g, {0, 2, 4}, set(), seed=0, epoch=0)
        assert report.repair_rounds == 0
        assert report.mis == frozenset({0, 2, 4})

    def test_inserted_edge_conflict_is_repaired(self):
        g = nx.path_graph(5)
        g.add_edge(0, 2)
        report = update_repair(g, {0, 2, 4}, {0, 2}, seed=0, epoch=0)
        assert_valid_mis(g, set(report.mis))
        assert len(report.evicted) == 1
        assert report.repair_rounds >= 1

    def test_deleted_dominator_recovers_coverage(self):
        g = nx.path_graph(5)
        g.remove_node(2)  # 2 dominated 1 and 3
        report = update_repair(g, {0, 4}, {1, 3}, seed=0, epoch=0)
        assert_valid_mis(g, set(report.mis))

    def test_round_accounting(self):
        g = nx.path_graph(6)
        g.add_edge(0, 2)
        report = update_repair(g, {0, 2, 4}, {0, 2}, seed=0, epoch=0)
        assert (
            report.repair_rounds
            == 1 + ROUNDS_PER_ITERATION * report.iterations
        )

    def test_repair_is_local(self):
        # Damage at one end of a long path leaves the far end untouched.
        g = nx.path_graph(30)
        mis = set(range(0, 30, 2))
        g.add_edge(0, 2)
        report = update_repair(g, mis, {0, 2}, seed=0, epoch=0)
        assert set(range(10, 30, 2)) <= report.mis

    def test_epoch_keys_differ(self):
        g = nx.gnp_random_graph(25, 0.2, seed=2)
        mis = set()
        damaged = set(g.nodes)
        a = update_repair(g, mis, damaged, seed=7, epoch=0)
        b = update_repair(g, mis, damaged, seed=7, epoch=1)
        again = update_repair(g, mis, damaged, seed=7, epoch=0)
        assert a.mis == again.mis  # same epoch → same coins
        assert_valid_mis(g, set(b.mis))

    def test_budget_exceeded_raises(self):
        g = nx.gnp_random_graph(30, 0.3, seed=3)
        with pytest.raises(RepairBudgetExceeded):
            update_repair(g, set(), set(g.nodes), seed=0, epoch=0, max_iterations=0)

    def test_cooperative_abort(self):
        g = nx.gnp_random_graph(30, 0.3, seed=3)
        with pytest.raises(ComputeAborted):
            update_repair(
                g, set(), set(g.nodes), seed=0, epoch=0,
                should_abort=lambda: True,
            )


class TestGraphSession:
    def test_epochs_maintain_validity(self):
        session = GraphSession("s", seed=1)
        session.apply_epoch([Mutation("add-edge", u, u + 1) for u in range(10)])
        for epoch in range(5):
            session.apply_epoch([Mutation("add-edge", 2 * epoch, 2 * epoch + 5)])
            assert_valid_mis(session.graph, set(session.mis))

    def test_damage_cap_forces_recompute(self):
        session = GraphSession("s", seed=1, repair_damage_cap=0.1)
        report = session.apply_epoch(
            [Mutation("add-edge", u, u + 1) for u in range(20)]
        )
        assert report.mode == "recompute"
        assert session.recomputes == 1

    def test_small_damage_repairs_incrementally(self):
        session = GraphSession(
            "s", seed=1, graph=nx.gnp_random_graph(40, 0.1, seed=4)
        )
        report = session.apply_epoch([Mutation("add-edge", 0, 1)])
        assert report.mode == "repair"
        assert report.rounds <= 1 + ROUNDS_PER_ITERATION * report.damaged

    def test_failed_epoch_rolls_back(self):
        session = GraphSession(
            "s", seed=1, graph=nx.gnp_random_graph(30, 0.15, seed=5)
        )
        fp = session.fingerprint
        mis = session.mis
        epoch = session.epoch
        with pytest.raises(ComputeAborted):
            session.apply_epoch(
                [Mutation("add-edge", 0, 9), Mutation("remove-node", 3)],
                should_abort=lambda: True,
            )
        assert session.fingerprint == fp
        assert session.mis == mis
        assert session.epoch == epoch
        # And the replay commits cleanly.
        report = session.apply_epoch(
            [Mutation("add-edge", 0, 9), Mutation("remove-node", 3)]
        )
        assert report.epoch == epoch + 1

    def test_mid_batch_failure_rolls_back_whole_batch(self):
        # A mutation that raises at apply time (validation bypassed to
        # simulate it) must not leave earlier batch members applied:
        # the epoch either commits whole or leaves no trace.
        session = GraphSession("s", seed=1, graph=nx.path_graph(6))
        fp = session.fingerprint
        mis = session.mis
        epoch = session.epoch
        with pytest.raises(BadRequestError):
            session.apply_epoch(
                [Mutation("add-edge", 0, 2), _raw_mutation("add-edge", 3, 3)]
            )
        assert not session.graph.has_edge(0, 2)
        assert session.fingerprint == fp
        assert session.mis == mis
        assert session.epoch == epoch
        # The session is not bricked: the next clean epoch commits.
        report = session.apply_epoch([Mutation("add-edge", 0, 5)])
        assert report.epoch == epoch + 1

    def test_same_seed_sessions_identical(self):
        batches = [
            [Mutation("add-edge", u, u + 3) for u in range(e, e + 4)]
            for e in range(6)
        ]
        finals = []
        for _ in range(2):
            session = GraphSession("s", seed=9)
            reports = [session.apply_epoch(batch) for batch in batches]
            finals.append((session.mis, [r.rounds for r in reports]))
        assert finals[0] == finals[1]

    def test_cache_key_scoped_to_session_and_epoch(self):
        # Identical graph content and config must NOT share a key: the
        # maintained MIS depends on the epoch history and snapshots
        # embed session metadata, so a cross-session hit would leak
        # another session's identity.
        a = GraphSession("a", seed=0, graph=nx.path_graph(4))
        b = GraphSession("b", seed=0)
        b.apply_epoch([Mutation("add-edge", u, u + 1) for u in range(3)])
        assert a.fingerprint == b.fingerprint
        assert a.cache_key() != b.cache_key()
        # Within one session the key moves with every committed epoch,
        # and carries the content fingerprint.
        before = b.cache_key()
        b.apply_epoch([Mutation("add-edge", 0, 3)])
        after = b.cache_key()
        assert before != after
        assert b.fingerprint in after

    def test_empty_graph_session(self):
        session = GraphSession("s", seed=0)
        report = session.apply_epoch([])
        assert report.mis_size == 0
        assert report.rounds == 0
