"""Tests for :class:`repro.serve.server.MISService`.

Every rung of the degradation ladder is exercised: incremental repair,
recompute fallback, stale-cache serving under an open breaker, and an
explicit shed once the cached snapshot has been evicted.  The breaker,
deadline, retry, and typed-engine-failure paths are pinned too —
including the regression that a budget-exceeded MPC request comes back
as a structured ``engine-failed`` response while the service keeps
serving other sessions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import CommBudgetExceededError
from repro.mis.registry import register_algorithm, unregister_algorithm
from repro.mpc.budget import CommBudget
from repro.mpc.runtime import run_sharded
from repro.serve import errors as serve_errors
from repro.serve.http import _STATUS_BY_CODE
from repro.serve.incremental import ComputeAborted, Mutation
from repro.serve.server import (
    CircuitBreaker,
    MISService,
    Request,
    ResultCache,
    ServeConfig,
    Response,
)


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    """Injectable monotonic clock so breaker windows need no sleeping."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_service(clock=None, **overrides) -> MISService:
    defaults = dict(retries=0, backoff_base=0.0)
    defaults.update(overrides)
    config = ServeConfig(**defaults)
    if clock is None:
        return MISService(config)
    return MISService(config, clock=clock)


PATH_EDGES = tuple((u, u + 1) for u in range(10))


async def create_session(service, name="s", edges=PATH_EDGES, **kw):
    response = await service.submit(
        Request(op="create", session=name, edges=edges, **kw)
    )
    assert response.ok, response
    return response


class TestConfig:
    def test_from_env_reads_knobs(self):
        config = ServeConfig.from_env(
            {
                "REPRO_SERVE_QUEUE_LIMIT": "7",
                "REPRO_SERVE_DEADLINE": "1.5",
                "REPRO_SERVE_BREAKER_THRESHOLD": "9",
                "REPRO_SERVE_DAMAGE_CAP": "0.25",
            }
        )
        assert config.queue_limit == 7
        assert config.default_deadline_s == 1.5
        assert config.breaker_threshold == 9
        assert config.repair_damage_cap == 0.25
        # Unset knobs keep their defaults.
        assert config.retries == ServeConfig.retries

    def test_blank_env_values_fall_back(self):
        config = ServeConfig.from_env({"REPRO_SERVE_QUEUE_LIMIT": "  "})
        assert config.queue_limit == ServeConfig.queue_limit


class TestCircuitBreaker:
    def test_open_half_open_closed_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failure_during_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"


class TestResultCache:
    def test_lru_eviction_is_bounded(self):
        cache = ResultCache(entries=2)
        cache.put(("a",), {"v": 1})
        cache.put(("b",), {"v": 2})
        assert cache.get(("a",)) == {"v": 1}  # refresh a
        cache.put(("c",), {"v": 3})  # evicts b
        assert len(cache) == 2
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.hits == 2
        assert cache.misses == 1


class TestSessionLifecycle:
    def test_create_query_drop(self):
        async def scenario():
            service = make_service()
            try:
                created = await create_session(service)
                assert created.result["mis_size"] > 0
                listed = await service.submit(Request(op="list"))
                assert listed.result["sessions"] == ["s"]
                query = await service.submit(Request(op="query", session="s"))
                assert query.ok and query.result["mis"] == created.result["mis"]
                dropped = await service.submit(Request(op="drop", session="s"))
                assert dropped.ok
                missing = await service.submit(Request(op="query", session="s"))
                assert missing.error["code"] == "session-not-found"
            finally:
                await service.close()

        run(scenario())

    def test_duplicate_create_rejected(self):
        async def scenario():
            service = make_service()
            try:
                await create_session(service)
                dup = await service.submit(
                    Request(op="create", session="s", edges=PATH_EDGES)
                )
                assert not dup.ok
                assert dup.error["code"] == "session-exists"
            finally:
                await service.close()

        run(scenario())

    def test_bad_requests(self):
        async def scenario():
            service = make_service()
            try:
                empty = await service.submit(
                    Request(op="create", session="", edges=())
                )
                assert empty.error["code"] == "bad-request"
                await create_session(service)
                no_mutations = await service.submit(
                    Request(op="mutate", session="s")
                )
                assert no_mutations.error["code"] == "bad-request"
                unknown = await service.submit(Request(op="frobnicate"))
                assert unknown.error["code"] == "bad-request"
            finally:
                await service.close()

        run(scenario())


class TestLadderRungs:
    def test_rung_1_incremental_repair(self):
        async def scenario():
            service = make_service()
            try:
                await create_session(service)
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert response.ok
                assert response.result["mode"] == "repair"
                assert service.counters.epochs_repair == 1
            finally:
                await service.close()

        run(scenario())

    def test_rung_2_recompute_fallback(self):
        async def scenario():
            service = make_service(repair_damage_cap=0.0)
            try:
                await create_session(service)
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert response.ok
                assert response.result["mode"] == "recompute"
                assert service.counters.epochs_recompute >= 1
            finally:
                await service.close()

        run(scenario())

    def test_rung_3_stale_cache_under_open_breaker(self):
        clock = FakeClock()

        async def scenario():
            service = make_service(
                clock, breaker_threshold=1, breaker_reset_s=1000.0
            )
            try:
                created = await create_session(service)
                service.inject_engine_failure(1)
                failed = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert failed.error["code"] == "engine-failed"
                assert service.sessions["s"].breaker.state == "open"
                # Breaker open: query degrades to the cached snapshot.
                query = await service.submit(Request(op="query", session="s"))
                assert query.ok
                assert query.status == "stale"
                assert query.served == "stale-cache"
                assert query.result["mis"] == created.result["mis"]
                assert service.counters.stale_served == 1
                # And the failed epoch rolled back: nothing changed.
                assert query.result["epoch"] == created.result["epoch"]
            finally:
                await service.close()

        run(scenario())

    def test_rung_4_shed_when_snapshot_evicted(self):
        clock = FakeClock()

        async def scenario():
            service = make_service(
                clock,
                breaker_threshold=1,
                breaker_reset_s=1000.0,
                cache_entries=1,
            )
            try:
                await create_session(service, "a")
                # A second session's snapshot evicts a's from the
                # single-entry cache.
                await create_session(
                    service, "b", edges=tuple((u, u + 2) for u in range(8))
                )
                service.inject_engine_failure(1)
                failed = await service.submit(
                    Request(
                        op="mutate",
                        session="a",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert failed.error["code"] == "engine-failed"
                shed = await service.submit(Request(op="query", session="a"))
                assert not shed.ok
                assert shed.status == "shed"
                assert shed.error["code"] == "shed"
                assert "retry_after_s" in shed.error
                assert service.counters.shed == 1
                # The healthy session is untouched by a's degradation.
                healthy = await service.submit(Request(op="query", session="b"))
                assert healthy.ok and healthy.status in ("ok", "stale")
            finally:
                await service.close()

        run(scenario())


class TestBreaker:
    def test_open_breaker_refuses_mutations_then_recovers(self):
        clock = FakeClock()

        async def scenario():
            service = make_service(clock, breaker_threshold=1, breaker_reset_s=50.0)
            try:
                await create_session(service)
                service.inject_engine_failure(1)
                await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                refused = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert refused.error["code"] == "circuit-open"
                assert not service.ready()
                # After the reset window the half-open probe may compute.
                clock.advance(50.0)
                probe = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert probe.ok
                assert service.sessions["s"].breaker.state == "closed"
                assert service.ready()
            finally:
                await service.close()

        run(scenario())


class TestDeadlines:
    def test_expired_deadline_answers_without_running(self):
        async def scenario():
            service = make_service()
            try:
                await create_session(service)
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                        deadline_s=1e-9,
                    )
                )
                assert not response.ok
                assert response.status == "deadline"
                assert response.error["code"] == "deadline-exceeded"
                assert service.counters.deadline_exceeded == 1
            finally:
                await service.close()

        run(scenario())

    def test_compute_aborted_maps_to_deadline(self):
        async def scenario():
            service = make_service()
            try:
                await create_session(service)
                state = service.sessions["s"]

                def aborting_apply(*args, **kwargs):
                    raise ComputeAborted("test abort")

                state.session.apply_epoch = aborting_apply
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert response.status == "deadline"
                assert response.error["code"] == "deadline-exceeded"
                # A cooperative abort is not an engine failure: the
                # breaker stays closed.
                assert state.breaker.state == "closed"
            finally:
                await service.close()

        run(scenario())


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        async def scenario():
            service = make_service(retries=1)
            try:
                await create_session(service)
                service.inject_engine_failure(1)
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert response.ok
                assert service.counters.retries == 1
                assert service.counters.engine_failures == 1
                assert service.sessions["s"].breaker.state == "closed"
            finally:
                await service.close()

        run(scenario())

    def test_retries_exhausted_is_typed_failure(self):
        async def scenario():
            service = make_service(retries=1, breaker_threshold=10)
            try:
                await create_session(service)
                service.inject_engine_failure(2)
                response = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert not response.ok
                assert response.error["code"] == "engine-failed"
                assert response.error["cause"] == "ReproError"
                assert service.counters.engine_failures == 2
            finally:
                await service.close()

        run(scenario())


class TestOverload:
    def test_bounded_queue_with_explicit_rejections(self):
        async def scenario():
            service = make_service(queue_limit=4)
            try:
                await create_session(service)
                requests = [
                    service.submit(
                        Request(
                            op="mutate",
                            session="s",
                            mutations=(Mutation("add-edge", i, i + 3),),
                        )
                    )
                    for i in range(40)
                ]
                responses = await asyncio.gather(*requests)
                # Every request is answered — nothing dropped, nothing
                # raised out of submit().
                assert len(responses) == 40
                assert all(isinstance(r, Response) for r in responses)
                statuses = {r.status for r in responses}
                assert statuses <= {"ok", "rejected"}
                rejected = [r for r in responses if r.status == "rejected"]
                assert rejected, "expected explicit queue-full rejections"
                assert all(
                    r.error["code"] == "queue-full"
                    and "retry_after_s" in r.error
                    for r in rejected
                )
                # The admission counter never exceeded the watermark.
                assert service.counters.queue_peak <= 4
                assert service.queue_depth == 0
            finally:
                await service.close()

        run(scenario())

    def test_overloaded_query_served_stale(self):
        async def scenario():
            service = make_service(queue_limit=1)
            try:
                await create_session(service)
                service._inflight = 1  # pin the service at the watermark
                try:
                    query = await service.submit(
                        Request(op="query", session="s")
                    )
                finally:
                    service._inflight = 0
                assert query.ok
                assert query.status == "stale"
                assert query.served == "stale-cache"
            finally:
                await service.close()

        run(scenario())


class TestCoalescing:
    def test_concurrent_mutations_share_one_epoch(self):
        async def scenario():
            service = make_service(coalesce_window_s=0.01)
            try:
                await create_session(service)
                responses = await asyncio.gather(
                    *[
                        service.submit(
                            Request(
                                op="mutate",
                                session="s",
                                mutations=(Mutation("add-edge", i, i + 4),),
                            )
                        )
                        for i in range(5)
                    ]
                )
                assert all(r.ok for r in responses)
                epochs = {r.result["epoch"] for r in responses}
                # Fewer committed epochs than requests: batching happened.
                assert len(epochs) < 5
                coalesced = max(r.result["coalesced_requests"] for r in responses)
                assert coalesced >= 2
            finally:
                await service.close()

        run(scenario())


class TestWorkerResilience:
    def test_worker_survives_non_repro_error(self):
        """A non-ReproError escaping compute (a logic bug) must come
        back as a structured engine-failed response and leave the
        per-session worker alive — not strand every later mutation."""

        async def scenario():
            service = make_service(breaker_threshold=10)
            try:
                await create_session(service)
                state = service.sessions["s"]
                original = state.session.apply_epoch

                def exploding_apply(*args, **kwargs):
                    raise ValueError("logic bug outside the ReproError tree")

                state.session.apply_epoch = exploding_apply
                broken = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert not broken.ok
                assert broken.error["code"] == "engine-failed"
                assert broken.error["cause"] == "ValueError"
                # The worker loop survived: the next request resolves
                # instead of hanging in the queue forever.
                state.session.apply_epoch = original
                healed = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert healed.ok
            finally:
                await service.close()

        run(scenario())

    def test_bad_request_failures_do_not_open_breaker(self):
        """Client-caused errors must not feed the circuit breaker: a
        few malformed requests would otherwise deny service to every
        well-formed client sharing the session."""

        async def scenario():
            service = make_service(breaker_threshold=1)
            try:
                await create_session(service)
                state = service.sessions["s"]
                original = state.session.apply_epoch

                def rejecting_apply(*args, **kwargs):
                    raise serve_errors.BadRequestError("client-caused")

                state.session.apply_epoch = rejecting_apply
                for _ in range(3):
                    response = await service.submit(
                        Request(
                            op="mutate",
                            session="s",
                            mutations=(Mutation("add-edge", 0, 5),),
                        )
                    )
                    assert response.error["code"] == "bad-request"
                assert state.breaker.state == "closed"
                # Valid traffic still computes immediately.
                state.session.apply_epoch = original
                ok = await service.submit(
                    Request(
                        op="mutate",
                        session="s",
                        mutations=(Mutation("add-edge", 0, 5),),
                    )
                )
                assert ok.ok
            finally:
                await service.close()

        run(scenario())


class TestCacheIsolation:
    def test_identical_content_sessions_do_not_share_snapshots(self):
        """Two sessions with the same graph, seed, algorithm, and
        engine must never serve each other's snapshots — the cached
        body embeds the session's name, epoch, and repair counters."""

        async def scenario():
            service = make_service()
            try:
                await create_session(service, "a")
                await create_session(service, "b")  # identical edges/seed
                qa = await service.submit(Request(op="query", session="a"))
                qb = await service.submit(Request(op="query", session="b"))
                assert qa.ok and qb.ok
                assert qa.result["session"] == "a"
                assert qb.result["session"] == "b"
            finally:
                await service.close()

        run(scenario())


class TestCommBudgetRegression:
    """Satellite: a budget-exceeded MPC request returns a structured
    failure while the server keeps serving."""

    def test_budget_exceeded_is_structured_and_survivable(self):
        def tiny_budget(graph, seed=0, max_iterations=10000):
            return run_sharded(
                "metivier",
                graph,
                seed=seed,
                budget=CommBudget(capacity=1, hard_capacity=1),
            )

        register_algorithm("tiny-budget-mpc", tiny_budget)
        try:

            async def scenario():
                service = make_service(breaker_threshold=10)
                try:
                    await create_session(service, "healthy")
                    # Empty bootstrap skips compute, so creation succeeds
                    # even though every recompute will blow the budget.
                    created = await service.submit(
                        Request(
                            op="create",
                            session="mpc",
                            algorithm="tiny-budget-mpc",
                        )
                    )
                    assert created.ok
                    # Enough churn to exceed the damage cap → recompute
                    # via the budgeted MPC engine → typed failure.
                    response = await service.submit(
                        Request(
                            op="mutate",
                            session="mpc",
                            mutations=tuple(
                                Mutation("add-edge", u, u + 1)
                                for u in range(12)
                            ),
                        )
                    )
                    assert not response.ok
                    assert response.status == "error"
                    assert response.error["code"] == "engine-failed"
                    assert response.error["cause"] == "CommBudgetExceededError"
                    # The event loop survived and other sessions serve.
                    query = await service.submit(
                        Request(op="query", session="healthy")
                    )
                    assert query.ok
                    assert service.health()["status"] == "ok"
                finally:
                    await service.close()

            run(scenario())
        finally:
            unregister_algorithm("tiny-budget-mpc")

    def test_comm_budget_error_raises_directly(self):
        import networkx as nx

        graph = nx.gnp_random_graph(40, 0.2, seed=1)
        with pytest.raises(CommBudgetExceededError):
            run_sharded(
                "metivier",
                graph,
                seed=0,
                budget=CommBudget(capacity=1, hard_capacity=1),
            )


class TestProbes:
    def test_health_ready_prometheus(self):
        async def scenario():
            service = make_service()
            try:
                await create_session(service)
                health = service.health()
                assert health["status"] == "ok"
                assert health["sessions"] == 1
                assert health["breakers"]["s"] == "closed"
                assert service.ready()
                text = service.prometheus()
                assert "repro_serve_requests_total 1" in text
                assert "repro_serve_ready 1" in text
                assert "# TYPE repro_serve_queue_depth gauge" in text
            finally:
                await service.close()

        run(scenario())


class TestHttpStatusMapping:
    def test_status_table_matches_error_classes(self):
        classes = [
            serve_errors.QueueFullError,
            serve_errors.DeadlineExceededError,
            serve_errors.CircuitOpenError,
            serve_errors.SessionNotFoundError,
            serve_errors.SessionExistsError,
            serve_errors.BadRequestError,
            serve_errors.EngineFailure,
            serve_errors.ShedError,
        ]
        assert {cls.code for cls in classes} == set(_STATUS_BY_CODE)
        for cls in classes:
            assert _STATUS_BY_CODE[cls.code] == cls.http_status

    def test_wrap_engine_error_preserves_cause(self):
        cause = CommBudgetExceededError(
            shard=0, round_index=1, bytes_needed=10, limit=1
        )
        wrapped = serve_errors.wrap_engine_error(cause)
        assert wrapped.code == "engine-failed"
        assert wrapped.to_dict()["cause"] == "CommBudgetExceededError"
        assert wrapped.cause is cause
