"""Tests for Linial coloring and the deterministic bounded-degree MIS."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.deterministic.linial import (
    bounded_degree_mis,
    delta_plus_one_coloring,
    linial_coloring,
    linial_step_parameters,
    next_prime,
    reduce_to_delta_plus_one,
)
from repro.graphs.generators import bounded_arboricity_graph, random_regular, random_tree
from repro.mis.validation import is_maximal_independent_set


class TestPrimes:
    def test_next_prime_values(self):
        assert next_prime(2) == 2
        assert next_prime(4) == 5
        assert next_prime(14) == 17
        assert next_prime(100) == 101

    def test_step_parameters_encode_palette(self):
        for m, delta in ((10, 3), (100, 5), (1000, 8), (2, 1)):
            q, d = linial_step_parameters(m, delta)
            assert q ** (d + 1) >= m
            assert q > delta * d


class TestLinialColoring:
    def test_proper_on_assorted(self, assorted_graph):
        coloring = linial_coloring(assorted_graph)
        coloring.validate(assorted_graph)

    def test_palette_shrinks_below_n(self):
        g = bounded_arboricity_graph(400, 2, seed=1)
        coloring = linial_coloring(g)
        assert coloring.palette < g.number_of_nodes()

    def test_log_star_round_count(self):
        g = bounded_arboricity_graph(500, 2, seed=2)
        coloring = linial_coloring(g)
        assert coloring.rounds <= 8  # log* 500 + slack; Linial is fast

    def test_empty_graph(self):
        coloring = linial_coloring(nx.Graph())
        assert coloring.colors == {}
        assert coloring.rounds == 0

    def test_deterministic(self):
        g = bounded_arboricity_graph(100, 2, seed=3)
        a = linial_coloring(g)
        b = linial_coloring(g)
        assert a.colors == b.colors


class TestDeltaPlusOne:
    def test_palette_at_most_delta_plus_one(self, assorted_graph):
        coloring = delta_plus_one_coloring(assorted_graph)
        delta = max((d for _, d in assorted_graph.degree()), default=0)
        assert coloring.palette <= delta + 1
        coloring.validate(assorted_graph)

    def test_regular_graph(self):
        g = random_regular(60, 4, seed=1)
        coloring = delta_plus_one_coloring(g)
        assert coloring.palette <= 5
        coloring.validate(g)

    def test_tree_three_colors_or_fewer_than_delta(self):
        t = random_tree(80, seed=4)
        coloring = delta_plus_one_coloring(t)
        delta = max(d for _, d in t.degree())
        assert coloring.palette <= delta + 1

    def test_rounds_monotone(self):
        g = bounded_arboricity_graph(120, 3, seed=5)
        base = linial_coloring(g)
        reduced = reduce_to_delta_plus_one(g, base)
        assert reduced.rounds >= base.rounds


class TestBoundedDegreeMis:
    def test_maximal_on_assorted(self, assorted_graph):
        mis, rounds = bounded_degree_mis(assorted_graph)
        assert is_maximal_independent_set(assorted_graph, mis)
        assert rounds > 0

    def test_blocked_respected(self, path5):
        mis, _ = bounded_degree_mis(path5, blocked={0, 2, 4})
        assert mis <= {1, 3}
        # Every unblocked node is dominated.
        for v in (1, 3):
            assert v in mis or any(u in mis for u in path5.neighbors(v))

    def test_deterministic(self, arb3_graph):
        assert bounded_degree_mis(arb3_graph)[0] == bounded_degree_mis(arb3_graph)[0]

    def test_round_count_scales_with_delta_not_n(self):
        small = bounded_arboricity_graph(100, 2, seed=6)
        large = bounded_arboricity_graph(3000, 2, seed=6)
        _, small_rounds = bounded_degree_mis(small)
        _, large_rounds = bounded_degree_mis(large)
        # 30x the nodes but similar Delta: rounds should not blow up.
        assert large_rounds <= 3 * small_rounds + 20

    def test_empty(self):
        mis, rounds = bounded_degree_mis(nx.Graph())
        assert mis == set()
        assert rounds == 0
