"""Tests for the distributed Linial MIS program."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.deterministic.linial import bounded_degree_mis, delta_plus_one_coloring
from repro.deterministic.linial_congest import (
    LinialMISProgram,
    linial_mis_congest,
    linial_schedule,
)
from repro.graphs.generators import bounded_arboricity_graph, random_regular, random_tree
from repro.mis.validation import assert_valid_mis


class TestSchedule:
    def test_palettes_shrink(self):
        steps, m_final, retirement = linial_schedule(500, 6)
        palettes = [m for _, _, m in steps] + [m_final]
        assert palettes == sorted(palettes, reverse=True)
        assert m_final < 500

    def test_retirement_count(self):
        _, m_final, retirement = linial_schedule(300, 5)
        assert retirement == m_final - 6

    def test_trivial_graph(self):
        steps, m_final, retirement = linial_schedule(1, 0)
        assert m_final >= 1


class TestProgram:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: nx.path_graph(25),
            lambda: random_tree(40, seed=1),
            lambda: bounded_arboricity_graph(60, 2, seed=2),
            lambda: random_regular(30, 3, seed=3),
            lambda: nx.cycle_graph(17),
        ],
    )
    def test_valid_mis_and_proper_coloring(self, builder):
        graph = builder()
        mis, colors, rounds, _ = linial_mis_congest(graph)
        assert_valid_mis(graph, mis)
        delta = max(d for _, d in graph.degree())
        for u, v in graph.edges():
            assert colors[u] != colors[v]
        assert max(colors.values()) <= delta

    def test_matches_centralized(self):
        # Both implementations are deterministic and follow the same
        # schedule, so the outputs must coincide exactly.
        for seed in range(3):
            graph = bounded_arboricity_graph(50, 2, seed=seed)
            congest_mis, congest_colors, _, _ = linial_mis_congest(graph)
            central_mis, _ = bounded_degree_mis(graph)
            central_colors = delta_plus_one_coloring(graph).colors
            assert congest_mis == central_mis
            assert congest_colors == central_colors

    def test_congest_budget_respected(self):
        graph = bounded_arboricity_graph(40, 2, seed=4)
        mis, _, _, metrics = linial_mis_congest(graph, enforce_congest=True)
        assert metrics.congest_compliant
        assert_valid_mis(graph, mis)

    def test_round_count_matches_plan(self):
        graph = random_tree(30, seed=5)
        net_delta = max(d for _, d in graph.degree())
        program = LinialMISProgram(30, net_delta)
        _, _, rounds, _ = linial_mis_congest(graph)
        assert rounds <= program.total_rounds + 1

    def test_edgeless_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        mis, colors, _, _ = linial_mis_congest(g)
        assert mis == {0, 1, 2, 3, 4}

    def test_deterministic(self):
        graph = bounded_arboricity_graph(40, 2, seed=6)
        a = linial_mis_congest(graph)
        b = linial_mis_congest(graph)
        assert a[0] == b[0]
        assert a[1] == b[1]
