"""Tests for per-component deterministic finishing (Lemma 3.8 driver)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.deterministic.small_components import finish_components, finish_one_component
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.mis.validation import is_independent_set, is_maximal_independent_set


class TestFinishOneComponent:
    def test_mis_of_a_tree(self):
        t = random_tree(40, seed=1)
        joined, rounds = finish_one_component(t, alpha=1, blocked=set())
        assert is_maximal_independent_set(t, joined)
        assert rounds > 0

    def test_mis_of_arb_component(self):
        g = bounded_arboricity_graph(50, 2, seed=2)
        joined, _ = finish_one_component(g, alpha=2, blocked=set())
        assert is_maximal_independent_set(g, joined)

    def test_blocked_nodes_excluded_but_dominating(self):
        path = nx.path_graph(5)
        # Nodes 0 and 1 are blocked (dominated by outside members).
        joined, _ = finish_one_component(path, alpha=1, blocked={0, 1})
        assert not (joined & {0, 1})
        # Every unblocked node is in or adjacent to the set.
        for v in (2, 3, 4):
            assert v in joined or any(u in joined for u in path.neighbors(v))

    def test_empty_component(self):
        joined, rounds = finish_one_component(nx.Graph(), alpha=1, blocked=set())
        assert joined == set()
        assert rounds == 0

    def test_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        joined, _ = finish_one_component(g, alpha=1, blocked={2})
        assert joined == {0, 1, 3}


class TestFinishComponents:
    def test_multiple_components_processed(self):
        g = nx.union(
            random_tree(20, seed=1),
            nx.relabel_nodes(random_tree(15, seed=2), {i: i + 50 for i in range(15)}),
        )
        report = finish_components(g, g.nodes(), alpha=1, blocked=set())
        assert report.component_count == 2
        assert is_maximal_independent_set(g, report.independent_set)

    def test_parallel_cost_is_max(self):
        g = nx.union(
            random_tree(30, seed=3),
            nx.relabel_nodes(random_tree(5, seed=4), {i: i + 50 for i in range(5)}),
        )
        report = finish_components(g, g.nodes(), alpha=1, blocked=set())
        assert report.max_rounds == max(report.per_component_rounds)
        assert report.total_rounds == sum(report.per_component_rounds)

    def test_subset_of_nodes_only(self):
        g = random_tree(30, seed=5)
        subset = set(range(10))
        report = finish_components(g, subset, alpha=1, blocked=set())
        assert report.independent_set <= subset

    def test_largest_component_recorded(self):
        g = nx.union(
            random_tree(25, seed=6),
            nx.relabel_nodes(random_tree(10, seed=7), {i: i + 50 for i in range(10)}),
        )
        report = finish_components(g, g.nodes(), alpha=1, blocked=set())
        assert report.largest_component == 25

    def test_empty_node_set(self):
        g = random_tree(10, seed=8)
        report = finish_components(g, [], alpha=1, blocked=set())
        assert report.component_count == 0
        assert report.independent_set == set()
