"""Tests for Cole-Vishkin coloring and the forest MIS sweep."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.deterministic.cole_vishkin import (
    color_reduction_rounds_bound,
    forest_mis_deterministic,
    forest_three_coloring,
    log_star,
)
from repro.errors import GraphError
from repro.graphs.generators import random_tree
from repro.graphs.orientation import bfs_forest_orientation


def _rooted_edges(tree: nx.Graph):
    """(child, parent) pairs from a BFS orientation of the tree."""
    orientation = bfs_forest_orientation(tree)
    return [(v, next(iter(orientation.parents(v)))) for v in tree.nodes() if orientation.parents(v)]


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536) if False else True  # skip the tower

    def test_bound_generous(self):
        assert color_reduction_rounds_bound(10**6) >= log_star(10**6)


class TestForestThreeColoring:
    def test_path(self):
        tree = nx.path_graph(50)
        result = forest_three_coloring(tree.nodes(), _rooted_edges(tree))
        assert set(result.colors.values()) <= {0, 1, 2}

    def test_proper_on_random_trees(self):
        for seed in range(4):
            tree = random_tree(200, seed=seed)
            edges = _rooted_edges(tree)
            result = forest_three_coloring(tree.nodes(), edges)
            for child, parent in edges:
                assert result.colors[child] != result.colors[parent]

    def test_round_count_is_log_star_ish(self):
        tree = random_tree(4000, seed=1)
        result = forest_three_coloring(tree.nodes(), _rooted_edges(tree))
        assert result.rounds <= color_reduction_rounds_bound(4000) + 6  # +6 shift-down rounds

    def test_star(self):
        star = nx.star_graph(30)
        result = forest_three_coloring(star.nodes(), [(i, 0) for i in range(1, 31)])
        assert all(result.colors[i] != result.colors[0] for i in range(1, 31))

    def test_multi_tree_forest(self):
        forest = nx.union(
            random_tree(40, seed=1),
            nx.relabel_nodes(random_tree(30, seed=2), {i: i + 100 for i in range(30)}),
        )
        edges = _rooted_edges(forest)
        result = forest_three_coloring(forest.nodes(), edges)
        for child, parent in edges:
            assert result.colors[child] != result.colors[parent]

    def test_single_node(self):
        result = forest_three_coloring([5], [])
        assert result.colors[5] in {0, 1, 2}

    def test_two_parents_rejected(self):
        with pytest.raises(GraphError):
            forest_three_coloring([0, 1, 2], [(0, 1), (0, 2)])


class TestForestMisSweep:
    def test_valid_on_tree(self):
        tree = random_tree(100, seed=3)
        joined, rounds = forest_mis_deterministic(tree, _rooted_edges(tree), set(), set())
        from repro.mis.validation import assert_valid_mis

        assert_valid_mis(tree, joined)
        assert rounds > 0

    def test_respects_blocked(self):
        path = nx.path_graph(6)
        joined, _ = forest_mis_deterministic(
            path, _rooted_edges(path), already_decided=set(), blocked={0, 2, 4}
        )
        assert joined <= {1, 3, 5}

    def test_respects_already_decided(self):
        path = nx.path_graph(4)
        # Node 1 already joined (from an earlier forest); nodes 0, 2 are
        # its neighbors and must not join now.
        joined, _ = forest_mis_deterministic(
            path, _rooted_edges(path), already_decided={1}, blocked={0, 2}
        )
        assert 0 not in joined and 2 not in joined
        assert 3 in joined

    def test_cross_forest_conflicts_resolved(self):
        # Component graph has an extra edge not in the forest: two
        # same-color forest nodes adjacent through it must not both join.
        g = nx.path_graph(4)
        g.add_edge(0, 2)  # extra non-forest edge
        forest = _rooted_edges(nx.path_graph(4))
        joined, _ = forest_mis_deterministic(g, forest, set(), set())
        from repro.mis.validation import is_independent_set

        assert is_independent_set(g, joined)

    def test_empty_forest(self):
        joined, rounds = forest_mis_deterministic(nx.Graph(), [], set(), set())
        assert joined == set()
        assert rounds == 0
