"""Tests for the Barenboim-Elkin H-partition and forest decomposition."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.deterministic.forest_decomposition import (
    barenboim_elkin_forests,
    h_partition,
)
from repro.errors import ConfigurationError, DecompositionError
from repro.graphs.forests import is_forest_partition
from repro.graphs.generators import (
    bounded_arboricity_graph,
    random_maximal_planar_graph,
    random_tree,
)


class TestHPartition:
    def test_tree_single_phase(self):
        # A tree always has >= half its nodes at degree <= 4a >= 2... a path
        # peels entirely in one phase at threshold (2+2)*1 = 4.
        part = h_partition(nx.path_graph(20), alpha=1)
        assert part.phases == 1

    def test_bands_cover_all_nodes(self):
        g = bounded_arboricity_graph(100, 3, seed=1)
        part = h_partition(g, alpha=3)
        assert set(part.bands) == set(g.nodes())

    def test_band_sizes_sum(self):
        g = bounded_arboricity_graph(100, 2, seed=2)
        part = h_partition(g, alpha=2)
        assert sum(part.band_sizes()) == 100

    def test_logarithmic_phases(self):
        import math

        g = bounded_arboricity_graph(1000, 3, seed=3)
        part = h_partition(g, alpha=3)
        assert part.phases <= 4 * math.log2(1000)

    def test_stalls_when_alpha_understated(self):
        # K7 has arboricity 4 > (2+2)*... threshold (2+eps)*1 = 3 < min
        # degree 6: peeling can never start.
        with pytest.raises(DecompositionError):
            h_partition(nx.complete_graph(7), alpha=1)

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            h_partition(nx.path_graph(3), alpha=1, epsilon=0)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            h_partition(nx.path_graph(3), alpha=0)


class TestForestDecomposition:
    def test_valid_partition_on_arb_graphs(self):
        for alpha, seed in ((2, 1), (3, 2)):
            g = bounded_arboricity_graph(80, alpha, seed=seed)
            decomposition = barenboim_elkin_forests(g, alpha)
            non_empty = [f for f in decomposition.forests if f]
            assert is_forest_partition(g, non_empty)

    def test_forest_count_bounded(self):
        g = bounded_arboricity_graph(80, 3, seed=4)
        decomposition = barenboim_elkin_forests(g, 3)
        assert decomposition.forest_count <= 4 * 3

    def test_each_forest_has_out_degree_one(self):
        g = random_maximal_planar_graph(60, seed=1)
        decomposition = barenboim_elkin_forests(g, 3)
        for forest in decomposition.forests:
            children = [child for child, _ in forest]
            assert len(children) == len(set(children))

    def test_rounds_accounting(self):
        g = bounded_arboricity_graph(80, 2, seed=5)
        decomposition = barenboim_elkin_forests(g, 2)
        assert decomposition.rounds == decomposition.partition.phases + 2

    def test_tree_input(self):
        t = random_tree(50, seed=6)
        decomposition = barenboim_elkin_forests(t, 1)
        non_empty = [f for f in decomposition.forests if f]
        assert is_forest_partition(t, non_empty)

    def test_rooted_forests_feed_cole_vishkin(self):
        # End-to-end: decompose, then 3-color each forest.
        from repro.deterministic.cole_vishkin import forest_three_coloring

        g = bounded_arboricity_graph(60, 2, seed=7)
        decomposition = barenboim_elkin_forests(g, 2)
        for forest in decomposition.forests:
            if not forest:
                continue
            nodes = {v for e in forest for v in e}
            result = forest_three_coloring(nodes, forest)
            for child, parent in forest:
                assert result.colors[child] != result.colors[parent]
