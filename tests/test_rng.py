"""Tests for the keyed randomness scheme (repro.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng


class TestPublicSurface:
    def test_bulk_entry_points_exported(self):
        # priority_array / priority_vector are the documented bulk-engine
        # entry points (E16/E17); they must be visible via ``import *``.
        assert "priority_array" in rng.__all__
        assert "priority_vector" in rng.__all__
        namespace: dict = {}
        exec("from repro.rng import *", namespace)
        assert callable(namespace["priority_array"])
        assert callable(namespace["priority_vector"])


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng.derive_seed(1, 2, 3) == rng.derive_seed(1, 2, 3)

    def test_order_sensitive(self):
        assert rng.derive_seed(1, 2) != rng.derive_seed(2, 1)

    def test_key_length_sensitive(self):
        assert rng.derive_seed(1) != rng.derive_seed(1, 0)

    def test_negative_keys_fold(self):
        # Negative keys are masked into 64 bits, not rejected.
        assert isinstance(rng.derive_seed(-5, 7), int)
        assert rng.derive_seed(-5, 7) != rng.derive_seed(5, 7)

    def test_range(self):
        for keys in [(0,), (2**64 - 1,), (123, 456, 789)]:
            value = rng.derive_seed(*keys)
            assert 0 <= value < 2**64


class TestPriorityDraw:
    def test_deterministic(self):
        assert rng.priority_draw(7, 3, 11) == rng.priority_draw(7, 3, 11)

    def test_varies_with_each_key(self):
        base = rng.priority_draw(7, 3, 11, tag=0)
        assert base != rng.priority_draw(8, 3, 11, tag=0)
        assert base != rng.priority_draw(7, 4, 11, tag=0)
        assert base != rng.priority_draw(7, 3, 12, tag=0)
        assert base != rng.priority_draw(7, 3, 11, tag=1)

    def test_in_priority_range(self):
        for node in range(50):
            value = rng.priority_draw(0, node, 0)
            assert 0 <= value < 2**rng.PRIORITY_BITS

    def test_roughly_uniform(self):
        # The mean of many draws should be near the middle of the range.
        draws = [rng.priority_draw(1, v, 0) for v in range(2000)]
        mean = sum(draws) / len(draws)
        assert abs(mean / 2**64 - 0.5) < 0.02


class TestUniformDraw:
    def test_unit_interval(self):
        for v in range(100):
            x = rng.uniform_draw(3, v, 5)
            assert 0.0 <= x < 1.0

    def test_matches_priority_bits(self):
        # uniform_draw is the top 53 bits of the same keyed hash.
        p = rng.priority_draw(3, 9, 5)
        u = rng.uniform_draw(3, 9, 5)
        assert u == (p >> 11) / float(1 << 53)

    def test_mean_near_half(self):
        draws = [rng.uniform_draw(2, v, 0) for v in range(5000)]
        assert abs(np.mean(draws) - 0.5) < 0.02


class TestBernoulliDraw:
    def test_extremes(self):
        assert not rng.bernoulli_draw(0.0, 1, 2, 3)
        assert rng.bernoulli_draw(1.0, 1, 2, 3)

    def test_frequency(self):
        hits = sum(rng.bernoulli_draw(0.3, 0, v, 0) for v in range(5000))
        assert 0.25 < hits / 5000 < 0.35


class TestNodeRoundRng:
    def test_reproducible_generator(self):
        a = rng.node_round_rng(1, 2, 3).random(4)
        b = rng.node_round_rng(1, 2, 3).random(4)
        assert np.array_equal(a, b)

    def test_distinct_streams(self):
        a = rng.node_round_rng(1, 2, 3).random(4)
        b = rng.node_round_rng(1, 2, 4).random(4)
        assert not np.array_equal(a, b)


class TestPriorityVector:
    def test_matches_scalar_draws(self):
        nodes = [5, 1, 9]
        vector = rng.priority_vector(7, nodes, 2)
        for v in nodes:
            assert vector[v] == rng.priority_draw(7, v, 2)

    def test_order_independent(self):
        assert rng.priority_vector(7, [1, 2, 3], 0) == rng.priority_vector(7, [3, 2, 1], 0)

    def test_edge_case_ids_match_scalar_draws(self):
        # Regression: the vectorized path must fold ids into the 64-bit
        # ring exactly as derive_seed does.  Negative ids and ids >= 2^63
        # are where a naive int64 -> uint64 astype diverges.
        nodes = [-1, -(2**63), 2**63, 2**64 - 1, 0, 42, 2**62 + 7]
        vector = rng.priority_vector(11, nodes, 3, tag=2)
        for v in nodes:
            assert vector[v] == rng.priority_draw(11, v, 3, tag=2)

    def test_property_random_ids_match_scalar_draws(self):
        import random

        gen = random.Random(1234)
        nodes = [gen.randint(-(2**64), 2**64) for _ in range(200)]
        vector = rng.priority_vector(5, nodes, 1)
        for v in nodes:
            assert vector[v] == rng.priority_draw(5, v, 1)

    def test_empty_iterable(self):
        assert rng.priority_vector(7, [], 0) == {}

    def test_single_numpy_call(self, monkeypatch):
        # The docstring promises one vectorized draw, not a scalar loop.
        calls = []
        real = rng.priority_array

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(rng, "priority_array", counting)
        rng.priority_vector(7, range(100), 0)
        assert len(calls) == 1


class TestPriorityArray:
    def test_matches_scalar_bit_for_bit(self):
        import numpy as np

        from repro.rng import priority_array

        nodes = np.array([0, 5, 17, 123456], dtype=np.int64)
        arr = priority_array(99, nodes, 12, tag=4)
        for i, v in enumerate(nodes):
            assert int(arr[i]) == rng.priority_draw(99, int(v), 12, tag=4)

    def test_empty_array(self):
        import numpy as np

        from repro.rng import priority_array

        assert len(priority_array(1, np.array([], dtype=np.int64), 0)) == 0

    def test_dtype_is_uint64(self):
        import numpy as np

        from repro.rng import priority_array

        assert priority_array(1, np.arange(3), 0).dtype == np.uint64

    def test_distinct_across_rounds(self):
        import numpy as np

        from repro.rng import priority_array

        nodes = np.arange(100)
        a = priority_array(1, nodes, 0)
        b = priority_array(1, nodes, 1)
        assert not np.array_equal(a, b)
