"""Integration tests: the full pipeline across subsystems.

These exercise paths that unit tests cannot: the complete ArbMIS pipeline
under CONGEST enforcement, cross-algorithm agreement on workloads, fault
tolerance of the competition process, and the consistency between the
instrumentation modules and the algorithm they instrument.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.faults import CrashSchedule
from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.core.arb_mis import arb_mis
from repro.core.bounded_arb import BoundedArbNodeProgram, bounded_arb_independent_set
from repro.core.parameters import compute_parameters
from repro.core.shattering import analyze_bad_components
from repro.graphs.generators import (
    bounded_arboricity_graph,
    grid_graph,
    k_tree,
    random_maximal_planar_graph,
    random_tree,
    starry_arboricity_graph,
)
from repro.graphs.properties import max_degree
from repro.mis.engine import mis_from_outputs
from repro.mis.metivier import MetivierMIS
from repro.mis.registry import available_algorithms, get_algorithm
from repro.mis.validation import assert_valid_mis, is_independent_set


class TestFullPipelineAcrossFamilies:
    @pytest.mark.parametrize(
        "builder,alpha",
        [
            (lambda: random_tree(300, seed=1), 1),
            (lambda: bounded_arboricity_graph(300, 2, seed=1), 2),
            (lambda: bounded_arboricity_graph(300, 4, seed=1), 4),
            (lambda: random_maximal_planar_graph(200, seed=1), 3),
            (lambda: grid_graph(15, 15), 2),
            (lambda: k_tree(150, 3, seed=1), 3),
            (lambda: starry_arboricity_graph(400, 2, hubs=4, seed=1), 2),
        ],
    )
    def test_arb_mis_on_family(self, builder, alpha):
        g = builder()
        result = arb_mis(g, alpha=alpha, seed=3)
        assert_valid_mis(g, result.mis)
        assert result.congest_rounds > 0

    def test_all_registered_algorithms_agree_on_validity(self):
        g = bounded_arboricity_graph(150, 2, seed=7)
        for name in available_algorithms():
            fn = get_algorithm(name)
            kwargs = {"alpha": 2} if name == "arb-mis" else {}
            if name in ("tree-independent-set", "lenzen-wattenhofer"):
                continue  # these require a forest
            result = fn(g, seed=7, **kwargs)
            assert_valid_mis(g, result.mis)


class TestCongestComplianceEndToEnd:
    def test_bounded_arb_program_within_budget(self):
        g = starry_arboricity_graph(200, 2, hubs=3, seed=2)
        params = compute_parameters(2, max_degree(g), "practical")
        net = Network(g)
        program = BoundedArbNodeProgram(params)
        sim = SynchronousSimulator(net, seed=2, enforce_congest=True)
        run = sim.run(program, max_rounds=program.total_rounds + 3)
        assert run.metrics.congest_compliant

    def test_message_sizes_logarithmic_across_n(self):
        # max message bits should grow like log n, not n.
        sizes = []
        for n in (64, 256, 1024):
            g = bounded_arboricity_graph(n, 2, seed=1)
            net = Network(g)
            run = SynchronousSimulator(net, seed=1).run(MetivierMIS())
            sizes.append(run.metrics.max_message_bits)
        assert sizes[-1] <= sizes[0] + 40  # only the node-id component grows


class TestFaultTolerance:
    def test_metivier_on_survivors_is_mis_of_survivor_graph(self):
        g = bounded_arboricity_graph(80, 2, seed=3)
        crashed = {0, 1, 2, 3, 4}
        schedule = CrashSchedule.single(0, crashed)
        net = Network(g)
        run = SynchronousSimulator(net, seed=3, crash_schedule=schedule).run(
            MetivierMIS(), max_rounds=2000
        )
        assert run.halted
        mis = mis_from_outputs(run.outputs)
        survivor_graph = g.subgraph(set(g.nodes()) - crashed)
        assert_valid_mis(survivor_graph, mis)

    def test_mid_run_crash_keeps_independence(self):
        g = bounded_arboricity_graph(80, 2, seed=4)
        schedule = CrashSchedule.single(3, {10, 11, 12})
        net = Network(g)
        run = SynchronousSimulator(net, seed=4, crash_schedule=schedule).run(
            MetivierMIS(), max_rounds=2000
        )
        mis = mis_from_outputs(run.outputs)
        # Independence always holds; maximality only over survivors that
        # were never neighbors of a pre-crash winner.
        assert is_independent_set(g, mis)


class TestInstrumentationConsistency:
    def test_shattering_report_matches_bad_set(self):
        g = starry_arboricity_graph(400, 2, hubs=4, seed=5)
        partial = bounded_arb_independent_set(g, alpha=2, seed=5)
        report = analyze_bad_components(g, partial.bad_set)
        assert report.bad_count == len(partial.bad_set)
        assert sum(report.component_sizes) == len(partial.bad_set)

    def test_scale_stats_account_for_all_nodes(self):
        g = starry_arboricity_graph(400, 2, hubs=4, seed=6)
        partial = bounded_arb_independent_set(g, alpha=2, seed=6)
        if not partial.scale_stats:
            pytest.skip("no scales ran")
        first = partial.scale_stats[0]
        assert first.active_before == g.number_of_nodes()
        last = partial.scale_stats[-1]
        assert last.active_after == len(partial.residual)

    def test_partial_plus_finish_covers_graph(self):
        g = bounded_arboricity_graph(200, 3, seed=8)
        result = arb_mis(g, alpha=3, seed=8)
        covered = set(result.mis)
        for v in result.mis:
            covered.update(g.neighbors(v))
        assert covered == set(g.nodes())


class TestCrossAlgorithmComparisons:
    def test_all_algorithms_same_order_of_mis_size(self):
        # MIS sizes on the same graph differ by at most the Delta+1 factor
        # in theory; empirically they are close.  Guard against gross bugs.
        g = bounded_arboricity_graph(300, 2, seed=9)
        sizes = {}
        for name in ("metivier", "luby-a", "luby-b", "ghaffari"):
            sizes[name] = len(get_algorithm(name)(g, seed=9).mis)
        assert max(sizes.values()) <= 2 * min(sizes.values())

    def test_arb_mis_iterations_scale_with_parameters(self):
        g = starry_arboricity_graph(500, 2, hubs=4, seed=10)
        fast = arb_mis(g, alpha=2, seed=10, early_exit=True)
        slow = arb_mis(g, alpha=2, seed=10, early_exit=False)
        assert_valid_mis(g, fast.mis)
        assert_valid_mis(g, slow.mis)
        assert fast.extra["report"].scale_iterations <= slow.extra["report"].scale_iterations
