"""Smoke tests: every example script must run end to end.

Examples are user-facing documentation; a broken example is a broken
README.  Each script is executed in-process (``runpy``) with stdout
captured, and key output markers are asserted so silent breakage (e.g. an
example that prints nothing) is caught too.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "arb-mis" in out
        assert "baselines" in out

    def test_planar(self, capsys):
        out = _run_example("planar_mis.py", capsys)
        assert "arboricity certificate" in out
        assert "metivier" in out

    def test_readk(self, capsys):
        out = _run_example("readk_tail_bounds.py", capsys)
        assert "Conjunction bound" in out
        assert "Lower tail" in out

    def test_shattering(self, capsys):
        out = _run_example("shattering_demo.py", capsys)
        assert "per-scale progress" in out
        assert "adversarial run" in out
        assert "valid MIS of the whole graph" in out

    def test_congest_trace(self, capsys):
        out = _run_example("congest_trace.py", capsys)
        assert "transcript" in out
        assert "engine duality check" in out
        assert "True" in out

    def test_matching_and_primitives(self, capsys):
        out = _run_example("matching_and_primitives.py", capsys)
        assert "bit-identical" in out
        assert "offline truth agrees: True" in out

    def test_scaling_curves(self, capsys):
        out = _run_example("scaling_curves.py", capsys)
        assert "iterations vs n" in out
        assert "log scale" in out
        assert "o=luby-b" in out
