"""Tests for Luby's Algorithm A and Algorithm B."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.mis.luby import (
    luby_a_mis,
    luby_a_mis_congest,
    luby_b_mis,
    luby_b_mis_congest,
)
from repro.mis.validation import assert_valid_mis


class TestLubyA:
    def test_valid(self, assorted_graph):
        assert_valid_mis(assorted_graph, luby_a_mis(assorted_graph, seed=1).mis)

    def test_dual_engine_identity(self, assorted_graph):
        assert (
            luby_a_mis(assorted_graph, seed=2).mis
            == luby_a_mis_congest(assorted_graph, seed=2).mis
        )

    def test_reproducible(self, arb3_graph):
        assert luby_a_mis(arb3_graph, seed=7).mis == luby_a_mis(arb3_graph, seed=7).mis

    def test_logarithmic_iterations(self):
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(1500, 2, seed=3)
        assert luby_a_mis(g, seed=1).iterations <= 8 * math.log2(1500)

    def test_complete_graph(self):
        result = luby_a_mis(nx.complete_graph(15), seed=0)
        assert len(result.mis) == 1


class TestLubyB:
    def test_valid(self, assorted_graph):
        assert_valid_mis(assorted_graph, luby_b_mis(assorted_graph, seed=1).mis)

    def test_dual_engine_identity(self, assorted_graph):
        assert (
            luby_b_mis(assorted_graph, seed=2).mis
            == luby_b_mis_congest(assorted_graph, seed=2).mis
        )

    def test_isolated_nodes_join_immediately(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        result = luby_b_mis(g, seed=0)
        assert result.mis == {0, 1, 2, 3}
        assert result.iterations == 1

    def test_star_hub_or_all_leaves(self):
        result = luby_b_mis(nx.star_graph(20), seed=5)
        mis = result.mis
        assert mis == {0} or (0 not in mis and len(mis) >= 1)
        assert_valid_mis(nx.star_graph(20), mis)

    def test_terminates_on_large_sparse(self):
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(1500, 2, seed=9)
        result = luby_b_mis(g, seed=9)
        assert result.extra["completed"]
        assert result.iterations <= 12 * math.log2(1500)

    def test_unmarked_nodes_never_win(self, arb3_graph):
        # Statistically: Luby B typically needs more iterations than
        # Métivier on the same graph because only marked nodes can join.
        from repro.mis.metivier import metivier_mis

        luby_iters = luby_b_mis(arb3_graph, seed=3).iterations
        met_iters = metivier_mis(arb3_graph, seed=3).iterations
        assert luby_iters >= met_iters - 1
