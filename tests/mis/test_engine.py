"""Tests for the shared competition-process machinery."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.mis.engine import (
    MISResult,
    active_adjacency,
    competition_winners,
    eliminate_winners,
)


class TestActiveAdjacency:
    def test_mirrors_graph(self, path5):
        adj = active_adjacency(path5)
        assert adj[0] == {1}
        assert adj[2] == {1, 3}

    def test_mutable_copy(self, path5):
        adj = active_adjacency(path5)
        adj[0].discard(1)
        assert path5.has_edge(0, 1)


class TestCompetitionWinners:
    def test_strict_local_maxima(self, path5):
        adj = active_adjacency(path5)
        keys = {v: (v, v) for v in path5.nodes()}  # increasing along path
        winners = competition_winners(set(path5.nodes()), adj, keys)
        assert winners == {4}

    def test_isolated_node_always_wins(self):
        g = nx.Graph()
        g.add_node(0)
        winners = competition_winners({0}, {0: set()}, {0: (5, 0)})
        assert winners == {0}

    def test_eligibility_filter(self, path5):
        adj = active_adjacency(path5)
        keys = {v: (v, v) for v in path5.nodes()}
        winners = competition_winners(set(path5.nodes()), adj, keys, eligible={0, 1})
        assert winners == set()  # 4 would win but is ineligible

    def test_inactive_neighbors_ignored(self, path5):
        adj = active_adjacency(path5)
        active = {0, 1, 2}  # nodes 3, 4 are gone
        keys = {v: (v, v) for v in active}
        assert competition_winners(active, adj, keys) == {2}

    def test_unique_keys_give_disjoint_winners(self, arb3_graph):
        from repro.rng import priority_draw

        adj = active_adjacency(arb3_graph)
        active = set(arb3_graph.nodes())
        keys = {v: (priority_draw(1, v, 0), v) for v in active}
        winners = competition_winners(active, adj, keys)
        for w in winners:
            assert not (adj[w] & winners)


class TestEliminateWinners:
    def test_removes_winner_and_neighbors(self, path5):
        adj = active_adjacency(path5)
        active = set(path5.nodes())
        removed = eliminate_winners(active, adj, {2})
        assert removed == {1, 2, 3}
        assert active == {0, 4}

    def test_prunes_adjacency(self, path5):
        adj = active_adjacency(path5)
        active = set(path5.nodes())
        eliminate_winners(active, adj, {2})
        assert adj[0] == set()  # 1 was pruned away
        assert adj[4] == set()

    def test_empty_winners_noop(self, path5):
        adj = active_adjacency(path5)
        active = set(path5.nodes())
        assert eliminate_winners(active, adj, set()) == set()
        assert active == set(path5.nodes())


class TestMISResult:
    def test_summary_fields(self):
        result = MISResult(mis={1, 2}, iterations=3, algorithm="x", seed=0)
        assert result.size == 2
        assert "x" in result.summary()
        assert "iterations=3" in result.summary()

    def test_summary_includes_rounds_when_present(self):
        result = MISResult(mis=set(), iterations=1, algorithm="x", seed=0, congest_rounds=9)
        assert "congest_rounds=9" in result.summary()


class TestMisFromOutputs:
    def test_extracts_only_mis_outputs(self):
        from repro.mis.engine import mis_from_outputs

        outputs = {
            0: ("mis", 0),
            1: ("dominated", 0),
            2: ("mis", 3),
            3: None,
            4: ("bad", 1),
        }
        assert mis_from_outputs(outputs) == {0, 2}

    def test_empty(self):
        from repro.mis.engine import mis_from_outputs

        assert mis_from_outputs({}) == set()
