"""Tests for Ghaffari's desire-level MIS algorithm."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.mis.ghaffari import ghaffari_mis, ghaffari_mis_congest
from repro.mis.validation import assert_valid_mis


class TestFastEngine:
    def test_valid(self, assorted_graph):
        assert_valid_mis(assorted_graph, ghaffari_mis(assorted_graph, seed=1).mis)

    def test_reproducible(self, arb3_graph):
        assert ghaffari_mis(arb3_graph, seed=6).mis == ghaffari_mis(arb3_graph, seed=6).mis

    def test_terminates(self, starry_graph):
        result = ghaffari_mis(starry_graph, seed=2)
        assert result.extra["completed"]
        assert_valid_mis(starry_graph, result.mis)

    def test_two_adjacent_marked_nodes_back_off(self):
        # On K2, both nodes start at p=1/2; whenever both mark, neither
        # joins — so the one that eventually joins does so in an iteration
        # where exactly one marked.  The output is always a single node.
        for seed in range(5):
            result = ghaffari_mis(nx.complete_graph(2), seed=seed)
            assert len(result.mis) == 1

    def test_shatter_iteration_recorded(self):
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(1200, 2, seed=4)
        result = ghaffari_mis(g, seed=4)
        shatter = result.extra["iterations_to_shatter"]
        assert shatter is not None
        assert shatter <= result.iterations

    def test_empty_graph(self):
        assert ghaffari_mis(nx.Graph(), seed=0).mis == set()

    def test_desire_levels_bounded(self):
        # The exponent floor prevents p from collapsing to 0 entirely; the
        # algorithm must still finish on a dense graph.
        result = ghaffari_mis(nx.complete_graph(30), seed=1)
        assert len(result.mis) == 1
        assert result.extra["completed"]


class TestCongestEngine:
    def test_bit_identical_to_fast(self, assorted_graph):
        fast = ghaffari_mis(assorted_graph, seed=8)
        slow = ghaffari_mis_congest(assorted_graph, seed=8)
        assert fast.mis == slow.mis

    def test_iterations_match(self, small_tree):
        fast = ghaffari_mis(small_tree, seed=3)
        slow = ghaffari_mis_congest(small_tree, seed=3)
        assert slow.iterations == fast.iterations

    def test_congest_budget_respected(self, small_tree):
        from repro.congest.network import Network
        from repro.congest.simulator import SynchronousSimulator
        from repro.mis.ghaffari import GhaffariMIS

        net = Network(small_tree)
        run = SynchronousSimulator(net, seed=3, enforce_congest=True).run(GhaffariMIS())
        assert run.halted
