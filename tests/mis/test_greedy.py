"""Tests for sequential greedy MIS baselines."""

from __future__ import annotations

import networkx as nx

from repro.mis.greedy import (
    greedy_mis,
    lexicographic_mis,
    min_degree_mis,
    random_order_mis,
)
from repro.mis.validation import assert_valid_mis


class TestGreedy:
    def test_order_respected(self, path5):
        assert greedy_mis(path5, [0, 1, 2, 3, 4]) == {0, 2, 4}
        assert greedy_mis(path5, [1, 0, 2, 3, 4]) == {1, 3}

    def test_always_valid(self, assorted_graph):
        assert_valid_mis(assorted_graph, lexicographic_mis(assorted_graph))

    def test_duplicate_entries_ignored(self, path5):
        assert greedy_mis(path5, [0, 0, 2, 2, 4]) == {0, 2, 4}


class TestLexicographic:
    def test_deterministic(self, arb3_graph):
        assert lexicographic_mis(arb3_graph) == lexicographic_mis(arb3_graph)

    def test_star_picks_hub_first(self):
        assert lexicographic_mis(nx.star_graph(5)) == {0}


class TestRandomOrder:
    def test_valid(self, arb3_graph):
        assert_valid_mis(arb3_graph, random_order_mis(arb3_graph, seed=1))

    def test_seed_reproducible(self, arb3_graph):
        assert random_order_mis(arb3_graph, seed=4) == random_order_mis(arb3_graph, seed=4)

    def test_seeds_vary(self, arb3_graph):
        results = {frozenset(random_order_mis(arb3_graph, seed=s)) for s in range(6)}
        assert len(results) > 1


class TestMinDegree:
    def test_valid(self, assorted_graph):
        assert_valid_mis(assorted_graph, min_degree_mis(assorted_graph))

    def test_star_picks_leaves(self):
        # Min-degree greedy takes leaves first, yielding the large side.
        assert min_degree_mis(nx.star_graph(5)) == {1, 2, 3, 4, 5}

    def test_at_least_as_large_as_hub_choice(self, small_tree):
        assert len(min_degree_mis(small_tree)) >= len(lexicographic_mis(small_tree)) - 5
