"""Direct tests for the PhasedMISNodeProgram skeleton.

The concrete algorithms exercise the skeleton heavily, but these tests
pin the skeleton's own contract with a minimal subclass, so a regression
in the phase machinery is reported against the skeleton, not whichever
algorithm happened to fail first.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.mis.engine import PhasedMISNodeProgram, mis_from_outputs
from repro.mis.validation import assert_valid_mis


class IdOrderMIS(PhasedMISNodeProgram):
    """Deterministic toy: the key is the node id itself.

    Local id-maxima join first; the process is exactly sequential greedy
    MIS by descending id, which makes every intermediate state checkable.
    """

    name = "id-order"

    def competition_key(self, ctx, iteration):
        return (ctx.node,)


class EveryOtherEligible(PhasedMISNodeProgram):
    """Only even nodes may win; ineligible nodes play a low key.

    Mirrors how the real programs use the hook (bounded-arb's
    non-competitive nodes play (0, 0, id)): ``may_win`` alone filters the
    *winner*, but an ineligible node holding a high key would still block
    its neighborhood — the key must drop too.
    """

    name = "every-other"

    def competition_key(self, ctx, iteration):
        return (1 if ctx.node % 2 == 0 else 0, ctx.node)

    def may_win(self, ctx, iteration):
        return ctx.node % 2 == 0


def _run(graph, program, seed=0, max_rounds=10_000):
    return SynchronousSimulator(Network(graph), seed=seed).run(program, max_rounds=max_rounds)


class TestSkeleton:
    def test_id_order_on_path_matches_greedy_descending(self):
        # Greedy by descending id on a path 0-1-2-3-4: picks 4, 2, 0.
        run = _run(nx.path_graph(5), IdOrderMIS())
        assert mis_from_outputs(run.outputs) == {0, 2, 4}

    def test_outputs_cover_all_nodes(self):
        graph = nx.cycle_graph(9)
        run = _run(graph, IdOrderMIS())
        assert set(run.outputs) == set(graph.nodes())
        for v, out in run.outputs.items():
            assert out[0] in ("mis", "dominated")

    def test_result_is_valid_mis(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=3)
        run = _run(graph, IdOrderMIS())
        assert_valid_mis(graph, mis_from_outputs(run.outputs))

    def test_join_and_domination_iterations_recorded(self):
        run = _run(nx.path_graph(3), IdOrderMIS())
        # Node 2 wins in iteration 0; node 1 dominated in iteration 0;
        # node 0 wins in iteration 1.
        assert run.outputs[2] == ("mis", 0)
        assert run.outputs[1][0] == "dominated"
        assert run.outputs[0] == ("mis", 1)

    def test_three_rounds_per_iteration(self):
        run = _run(nx.path_graph(2), IdOrderMIS())
        # One iteration: keys, decide (1 joins+halts), notify (0 halts).
        assert run.metrics.rounds == 3

    def test_eligibility_hook(self):
        # Odd nodes can never join; on a path of 4 the even nodes 0, 2
        # must carry the set, and odd nodes are dominated.
        run = _run(nx.path_graph(4), EveryOtherEligible())
        mis = mis_from_outputs(run.outputs)
        assert mis == {0, 2}

    def test_eligibility_deadlock_is_bounded_by_round_cap(self):
        # Two odd nodes alone can never decide: the run hits the cap
        # rather than producing a wrong answer.
        g = nx.Graph()
        g.add_edge(1, 3)
        run = _run(g, EveryOtherEligible(), max_rounds=30)
        assert not run.halted
        assert mis_from_outputs(run.outputs) == set()
