"""Tests for MIS validation helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import NotAnIndependentSetError, NotMaximalError
from repro.mis.validation import (
    assert_valid_mis,
    is_independent_set,
    is_maximal_independent_set,
    unDominated_node,
    violating_edge,
)


class TestIndependence:
    def test_empty_set_independent(self, path5):
        assert is_independent_set(path5, set())

    def test_valid(self, path5):
        assert is_independent_set(path5, {0, 2, 4})

    def test_adjacent_pair_detected(self, path5):
        assert not is_independent_set(path5, {0, 1})
        assert violating_edge(path5, {0, 1}) == (0, 1)

    def test_violating_edge_none_when_valid(self, path5):
        assert violating_edge(path5, {0, 3}) is None


class TestMaximality:
    def test_maximal(self, path5):
        assert is_maximal_independent_set(path5, {0, 2, 4})
        assert is_maximal_independent_set(path5, {1, 3})

    def test_not_maximal(self, path5):
        assert not is_maximal_independent_set(path5, {0})
        assert unDominated_node(path5, {0}) in {2, 3, 4}

    def test_dependent_set_not_maximal(self, path5):
        assert not is_maximal_independent_set(path5, {0, 1, 3})

    def test_restricted_maximality(self, path5):
        # {0} dominates nodes 0 and 1 only; restricted to {0, 1} it's maximal.
        assert is_maximal_independent_set(path5, {0}, restrict_to={0, 1})
        assert not is_maximal_independent_set(path5, {0}, restrict_to={0, 1, 2})

    def test_isolated_nodes_must_be_included(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        g.add_edge(2, 3)
        assert not is_maximal_independent_set(g, {2})
        assert is_maximal_independent_set(g, {0, 1, 2})


class TestAssertValidMis:
    def test_passes_silently(self, path5):
        assert_valid_mis(path5, {1, 3})

    def test_raises_on_dependence(self, path5):
        with pytest.raises(NotAnIndependentSetError):
            assert_valid_mis(path5, {1, 2})

    def test_raises_on_non_maximality(self, path5):
        with pytest.raises(NotMaximalError):
            assert_valid_mis(path5, {1})

    def test_triangle(self, triangle):
        assert_valid_mis(triangle, {0})
        with pytest.raises(NotAnIndependentSetError):
            assert_valid_mis(triangle, {0, 1})

    def test_empty_graph(self):
        assert_valid_mis(nx.Graph(), set())
