"""Tests for TreeIndependentSet (the α = 1 instantiation)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.generators import random_binary_tree, random_tree
from repro.mis.tree import tree_mis
from repro.mis.validation import assert_valid_mis


class TestTreeMis:
    def test_valid_on_random_trees(self):
        for seed in range(4):
            t = random_tree(120, seed=seed)
            result = tree_mis(t, seed=seed)
            assert_valid_mis(t, result.mis)

    def test_valid_on_paths_and_stars(self):
        for g in (nx.path_graph(40), nx.star_graph(40)):
            assert_valid_mis(g, tree_mis(g, seed=1).mis)

    def test_valid_on_forest(self):
        forest = nx.union(
            random_tree(30, seed=1),
            nx.relabel_nodes(random_tree(20, seed=2), {i: i + 100 for i in range(20)}),
        )
        assert_valid_mis(forest, tree_mis(forest, seed=3).mis)

    def test_rejects_non_forest(self):
        with pytest.raises(GraphError):
            tree_mis(nx.cycle_graph(5), seed=0)

    def test_validation_can_be_skipped(self):
        # With validate_forest=False the pipeline still produces an MIS of
        # whatever graph it is given (the guarantees just don't apply).
        result = tree_mis(nx.cycle_graph(6), seed=0, validate_forest=False)
        assert_valid_mis(nx.cycle_graph(6), result.mis)

    def test_algorithm_name(self):
        result = tree_mis(random_tree(20, seed=4), seed=0)
        assert result.algorithm == "tree-independent-set"

    def test_binary_tree(self):
        t = random_binary_tree(150, seed=2)
        assert_valid_mis(t, tree_mis(t, seed=2).mis)

    def test_reproducible(self):
        t = random_tree(80, seed=7)
        assert tree_mis(t, seed=1).mis == tree_mis(t, seed=1).mis

    def test_paper_profile_runs(self):
        # With paper constants Θ=0: everything lands in the finishing
        # phase, which must still produce a valid MIS.
        t = random_tree(60, seed=3)
        result = tree_mis(t, seed=3, profile="paper")
        assert_valid_mis(t, result.mis)
        report = result.extra["report"]
        assert report.parameters.theta == 0
