"""Tests for the algorithm registry."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.mis.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.mis.validation import assert_valid_mis


class TestRegistry:
    def test_default_algorithms_present(self):
        names = available_algorithms()
        for expected in (
            "luby-a",
            "luby-b",
            "metivier",
            "ghaffari",
            "tree-independent-set",
            "arb-mis",
        ):
            assert expected in names

    def test_lookup_and_run(self):
        fn = get_algorithm("metivier")
        g = nx.path_graph(10)
        assert_valid_mis(g, fn(g, seed=1).mis)

    def test_arb_mis_takes_alpha(self):
        fn = get_algorithm("arb-mis")
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(60, 2, seed=1)
        assert_valid_mis(g, fn(g, alpha=2, seed=1).mis)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("definitely-not-an-algorithm")

    def test_duplicate_registration_rejected(self):
        register_algorithm("test-only-dummy", lambda g, seed=0: None)
        try:
            with pytest.raises(ConfigurationError):
                register_algorithm("test-only-dummy", lambda g, seed=0: None)
        finally:
            unregister_algorithm("test-only-dummy")
        assert "test-only-dummy" not in available_algorithms()


class TestNodeProgramRegistry:
    def test_available_node_programs_instantiate(self):
        import networkx as nx

        from repro.mis.registry import available_node_programs, get_node_program

        graph = nx.path_graph(10)
        for name in available_node_programs():
            program, max_rounds = get_node_program(name, graph, alpha=2)
            assert hasattr(program, "on_round")
            assert max_rounds is None or max_rounds > 0

    def test_arb_mis_gets_a_fixed_schedule(self):
        import networkx as nx

        from repro.mis.registry import get_node_program

        program, max_rounds = get_node_program("arb-mis", nx.path_graph(20))
        assert max_rounds == program.total_rounds + 3

    def test_unknown_node_program_lists_available(self):
        import networkx as nx
        import pytest

        from repro.errors import ConfigurationError
        from repro.mis.registry import get_node_program

        with pytest.raises(ConfigurationError, match="metivier"):
            get_node_program("nonsense", nx.path_graph(4))
