"""Tests for the algorithm registry."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.mis.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.mis.validation import assert_valid_mis


class TestRegistry:
    def test_default_algorithms_present(self):
        names = available_algorithms()
        for expected in (
            "luby-a",
            "luby-b",
            "metivier",
            "ghaffari",
            "tree-independent-set",
            "arb-mis",
        ):
            assert expected in names

    def test_lookup_and_run(self):
        fn = get_algorithm("metivier")
        g = nx.path_graph(10)
        assert_valid_mis(g, fn(g, seed=1).mis)

    def test_arb_mis_takes_alpha(self):
        fn = get_algorithm("arb-mis")
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(60, 2, seed=1)
        assert_valid_mis(g, fn(g, alpha=2, seed=1).mis)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("definitely-not-an-algorithm")

    def test_duplicate_registration_rejected(self):
        register_algorithm("test-only-dummy", lambda g, seed=0: None)
        try:
            with pytest.raises(ConfigurationError):
                register_algorithm("test-only-dummy", lambda g, seed=0: None)
        finally:
            unregister_algorithm("test-only-dummy")
        assert "test-only-dummy" not in available_algorithms()


class TestEngineSelection:
    def test_bulk_variants_registered(self):
        names = available_algorithms()
        for expected in ("metivier-bulk", "luby-a-bulk", "luby-b-bulk", "ghaffari-bulk"):
            assert expected in names

    def test_engine_argument_upgrades_to_bulk(self):
        from repro.mis.bulk import metivier_mis_bulk
        from repro.mis.metivier import metivier_mis

        assert get_algorithm("metivier", engine="bulk") is metivier_mis_bulk
        assert get_algorithm("metivier", engine="scalar") is metivier_mis
        assert get_algorithm("metivier") is metivier_mis

    def test_engine_env_knob(self, monkeypatch):
        from repro.mis.bulk import luby_a_mis_bulk
        from repro.mis.luby import luby_a_mis

        monkeypatch.setenv("REPRO_MIS_ENGINE", "bulk")
        assert get_algorithm("luby-a") is luby_a_mis_bulk
        monkeypatch.setenv("REPRO_MIS_ENGINE", "scalar")
        assert get_algorithm("luby-a") is luby_a_mis
        monkeypatch.setenv("REPRO_MIS_ENGINE", "")
        assert get_algorithm("luby-a") is luby_a_mis

    def test_explicit_engine_beats_env(self, monkeypatch):
        from repro.mis.metivier import metivier_mis

        monkeypatch.setenv("REPRO_MIS_ENGINE", "bulk")
        assert get_algorithm("metivier", engine="scalar") is metivier_mis

    def test_bulk_falls_back_when_no_bulk_engine(self):
        # tree-independent-set has no columnar twin; the knob must not
        # break sweeps that include it.
        scalar = get_algorithm("tree-independent-set")
        assert get_algorithm("tree-independent-set", engine="bulk") is scalar

    def test_bulk_name_stays_bulk(self):
        from repro.mis.bulk import metivier_mis_bulk

        assert get_algorithm("metivier-bulk", engine="bulk") is metivier_mis_bulk

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="engine"):
            get_algorithm("metivier", engine="gpu")
        monkeypatch.setenv("REPRO_MIS_ENGINE", "gpu")
        with pytest.raises(ConfigurationError, match="engine"):
            get_algorithm("metivier")


class TestNodeProgramRegistry:
    def test_available_node_programs_instantiate(self):
        import networkx as nx

        from repro.mis.registry import available_node_programs, get_node_program

        graph = nx.path_graph(10)
        for name in available_node_programs():
            program, max_rounds = get_node_program(name, graph, alpha=2)
            assert hasattr(program, "on_round")
            assert max_rounds is None or max_rounds > 0

    def test_arb_mis_gets_a_fixed_schedule(self):
        import networkx as nx

        from repro.mis.registry import get_node_program

        program, max_rounds = get_node_program("arb-mis", nx.path_graph(20))
        assert max_rounds == program.total_rounds + 3

    def test_unknown_node_program_lists_available(self):
        import networkx as nx
        import pytest

        from repro.errors import ConfigurationError
        from repro.mis.registry import get_node_program

        with pytest.raises(ConfigurationError, match="metivier"):
            get_node_program("nonsense", nx.path_graph(4))
