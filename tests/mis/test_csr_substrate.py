"""Tests for the columnar substrate (repro.graphs.csr + repro.mis.csr).

The segment-reduction edge cases here were previously exercised only
implicitly by the large-scale benchmark (E16); they are pinned as unit
tests so a kernel regression fails fast and locally.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    GraphError,
    NotAnIndependentSetError,
    NotMaximalError,
)
from repro.graphs.csr import (
    CSRGraph,
    bounded_arboricity_edges,
    csr_bounded_arboricity,
    csr_from_edges,
    csr_from_graph,
)
from repro.graphs.generators import bounded_arboricity_graph
from repro.mis import csr as kernels
from repro.mis.bulk import metivier_mis_bulk
from repro.mis.metivier import metivier_mis


class TestSegmentMax:
    def test_empty_segment_at_head(self):
        # Node 0 isolated: indptr starts with a zero-length segment.
        indptr = np.array([0, 0, 2, 3], dtype=np.int64)
        values = np.array([7, 3, 9], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [0, 7, 9]

    def test_empty_segment_in_middle(self):
        indptr = np.array([0, 2, 2, 3], dtype=np.int64)
        values = np.array([4, 8, 5], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [8, 0, 5]

    def test_empty_segment_at_tail(self):
        # The out-of-bounds-start path: the last segment starts at
        # values.size.
        indptr = np.array([0, 1, 3, 3], dtype=np.int64)
        values = np.array([2, 6, 1], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [2, 6, 0]

    def test_tail_empty_does_not_truncate_previous_segment(self):
        # Regression: clipping the trailing start to values.size - 1
        # used to shift the previous segment's end boundary, dropping
        # its last element.  Here that element (9) is the maximum, so
        # the old code answered 1.
        indptr = np.array([0, 2, 2], dtype=np.int64)
        values = np.array([1, 9], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [9, 0]

    def test_all_segments_empty(self):
        indptr = np.zeros(5, dtype=np.int64)
        values = np.array([], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [0, 0, 0, 0]

    def test_consecutive_trailing_empties(self):
        indptr = np.array([0, 3, 3, 3], dtype=np.int64)
        values = np.array([1, 9, 2], dtype=np.uint64)
        assert list(kernels.segment_max(values, indptr)) == [9, 0, 0]


class TestSegmentSum:
    def test_matches_python_sums(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        values = np.array([1.5, 0.25, 2.0, 4.0, 0.5], dtype=np.float64)
        out = kernels.segment_sum(values, indptr)
        assert list(out) == [1.75, 0.0, 6.5]

    def test_tail_empty_does_not_truncate_previous_segment(self):
        # Same regression as segment_max: the old clip dropped the last
        # element of the final nonempty segment (answered [1.5, 0.0]).
        indptr = np.array([0, 2, 2], dtype=np.int64)
        values = np.array([1.5, 2.5], dtype=np.float64)
        assert list(kernels.segment_sum(values, indptr)) == [4.0, 0.0]


class TestNeighborKernels:
    def test_neighbor_count_all_inactive(self, arb3_graph):
        csr = csr_from_graph(arb3_graph)
        counts = kernels.neighbor_count(np.zeros(csr.n, dtype=bool), csr)
        assert not counts.any()

    def test_neighbor_count_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from(range(6))
        g.add_edge(0, 1)
        csr = csr_from_graph(g)
        counts = kernels.neighbor_count(np.ones(csr.n, dtype=bool), csr)
        assert list(counts) == [1, 1, 0, 0, 0, 0]

    def test_neighbor_any_and_spread_agree(self, arb3_graph):
        csr = csr_from_graph(arb3_graph)
        rng = np.random.default_rng(0)
        mask = rng.random(csr.n) < 0.2
        assert np.array_equal(
            kernels.neighbor_any(mask, csr), kernels.spread_to_neighbors(mask, csr)
        )

    def test_spread_matches_networkx(self, arb3_graph):
        csr = csr_from_graph(arb3_graph)
        mask = np.zeros(csr.n, dtype=bool)
        mask[[0, 17, 42]] = True
        flagged = {int(csr.labels[i]) for i in np.nonzero(mask)[0]}
        expected = set()
        for v in flagged:
            expected.update(arb3_graph.neighbors(v))
        spread = kernels.spread_to_neighbors(mask, csr)
        assert csr.label_set(spread) == expected


class TestMaskedCompetition:
    def test_unique_keys_select_local_maxima(self):
        g = nx.path_graph(5)
        csr = csr_from_graph(g)
        keys = np.array([5, 1, 4, 2, 3], dtype=np.uint64)
        active = np.ones(5, dtype=bool)
        winners = kernels.masked_competition(csr, active, keys)
        assert list(winners) == [True, False, True, False, True]

    def test_tie_falls_back_to_exact_rule(self):
        # Two adjacent equal keys: the id tiebreak must decide, exactly as
        # the scalar (priority, id) rule does.
        g = nx.path_graph(3)
        csr = csr_from_graph(g)
        keys = np.array([9, 9, 1], dtype=np.uint64)
        active = np.ones(3, dtype=bool)
        winners = kernels.masked_competition(
            csr,
            active,
            keys,
            exact_key=lambda i: (int(keys[i]), csr.tiebreak_id(i)),
        )
        # (9, 1) beats (9, 0); node 2's (1, 2) loses to (9, 1).
        assert list(winners) == [False, True, False]

    def test_zero_key_routes_through_fallback(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        csr = csr_from_graph(g)
        keys = np.zeros(2, dtype=np.uint64)
        active = np.ones(2, dtype=bool)
        winners = kernels.masked_competition(
            csr, active, keys, exact_key=lambda i: (0, csr.tiebreak_id(i))
        )
        # Isolated nodes beat their (empty) neighborhoods even at key 0.
        assert list(winners) == [True, True]

    def test_degenerate_without_fallback_raises(self):
        csr = csr_from_graph(nx.path_graph(2))
        keys = np.zeros(2, dtype=np.uint64)
        with pytest.raises(ValueError):
            kernels.masked_competition(csr, np.ones(2, dtype=bool), keys)

    def test_forced_tie_matches_scalar_engine(self, monkeypatch):
        """Collapse all priorities to a constant: the bulk engine must run
        entirely through the exact fallback and still equal the scalar
        engine (whose (priority, id) tuples resolve every tie)."""
        graph = bounded_arboricity_graph(40, 2, seed=3)

        def constant_priorities(seed, nodes, round_index, tag=0):
            return np.full(len(nodes), 12345, dtype=np.uint64)

        monkeypatch.setattr(kernels, "priority_array", constant_priorities)
        import repro.mis.metivier as metivier_module

        monkeypatch.setattr(
            metivier_module, "priority_draw", lambda *a, **k: 12345
        )
        bulk = metivier_mis_bulk(graph, seed=0)
        scalar = metivier_mis(graph, seed=0)
        assert bulk.mis == scalar.mis
        assert bulk.iterations == scalar.iterations

    def test_trailing_isolated_node_matches_scalar_engine(self):
        """Regression for the segment_max boundary bug: a trailing
        degree-0 node made the previous node's neighbor reduction drop
        its last edge, so the bulk engine could crown two adjacent
        winners (an invalid set).  Triangle + isolated node 3, seed 3 is
        the minimal reproduction."""
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edges_from([(0, 1), (0, 2), (1, 2)])
        for seed in range(12):
            bulk = metivier_mis_bulk(graph, seed=seed)
            scalar = metivier_mis(graph, seed=seed)
            assert bulk.mis == scalar.mis, seed
            assert bulk.iterations == scalar.iterations, seed


class TestEliminate:
    def test_winners_and_active_neighbors_removed(self):
        g = nx.path_graph(4)
        csr = csr_from_graph(g)
        active = np.array([True, True, False, True])
        winners = np.array([True, False, False, False])
        eliminated = kernels.eliminate_winners_bulk(csr, active, winners)
        assert list(eliminated) == [True, True, False, False]
        assert list(active) == [False, False, False, True]


class TestCsrFromGraph:
    def test_round_trip_degrees(self, arb3_graph):
        csr = csr_from_graph(arb3_graph)
        for i in range(csr.n):
            assert csr.indptr[i + 1] - csr.indptr[i] == arb3_graph.degree(
                int(csr.labels[i])
            )

    def test_string_labels(self):
        g = nx.Graph([("b", "a"), ("a", "c")])
        csr = csr_from_graph(g)
        assert list(csr.labels) == ["a", "b", "c"]
        assert not csr.integer_labeled
        # rng keys are the dense positions for non-integer labels
        assert list(csr.key_ids) == [0, 1, 2]
        assert csr.label_set(np.array([True, False, True])) == {"a", "c"}

    def test_unsortable_label_mix_still_builds(self):
        g = nx.Graph([("a", 1), (1, (2, 3))])
        csr = csr_from_graph(g)
        assert csr.n == 3
        assert csr.edge_count == 2

    def test_integer_labels_key_as_themselves(self):
        g = nx.Graph([(10, -20), (-20, 40)])
        csr = csr_from_graph(g)
        assert csr.integer_labeled
        mask = (1 << 64) - 1
        assert list(csr.key_ids) == [(-20) & mask, 10, 40]
        assert csr.tiebreak_id(0) == -20


class TestCsrFromEdges:
    def test_matches_graph_build(self):
        g = bounded_arboricity_graph(120, 2, seed=7)
        u = np.array([a for a, b in g.edges()], dtype=np.int64)
        v = np.array([b for a, b in g.edges()], dtype=np.int64)
        direct = csr_from_edges(120, u, v)
        via_nx = csr_from_graph(g)
        assert np.array_equal(direct.indptr, via_nx.indptr)
        assert np.array_equal(direct.indices, via_nx.indices)

    def test_dedup_and_self_loops(self):
        u = np.array([0, 0, 1, 2, 2])
        v = np.array([1, 1, 0, 2, 0])
        csr = csr_from_edges(3, u, v)
        assert csr.edge_count == 2  # {0,1} deduped, {2,2} dropped
        assert list(csr.degrees()) == [2, 1, 1]

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            csr_from_edges(2, np.array([0]), np.array([5]))

    def test_empty(self):
        csr = csr_from_edges(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert csr.n == 0 and csr.edge_count == 0


class TestArboricityEdges:
    def test_forest_union_shape(self):
        csr = csr_bounded_arboricity(500, 3, seed=1)
        assert csr.n == 500
        # α forests on n nodes: ≤ α(n-1) edges, ≥ n-1 (one spanning tree).
        assert 499 <= csr.edge_count <= 3 * 499
        assert not (csr.indices == np.repeat(np.arange(500), csr.degrees())).any()

    def test_deterministic(self):
        a = bounded_arboricity_edges(200, 2, seed=9)
        b = bounded_arboricity_edges(200, 2, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_single_node(self):
        u, v = bounded_arboricity_edges(1, 2, seed=0)
        assert u.size == 0 and v.size == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            bounded_arboricity_edges(0, 2)
        with pytest.raises(ConfigurationError):
            bounded_arboricity_edges(10, 0)


class TestValidateMisCsr:
    def test_accepts_valid_mis(self):
        csr = csr_bounded_arboricity(400, 2, seed=4)
        result = metivier_mis_bulk(csr, seed=4)
        members = np.zeros(csr.n, dtype=bool)
        members[list(result.mis)] = True
        kernels.validate_mis_csr(csr, members)

    def test_rejects_adjacent_members(self):
        csr = csr_from_graph(nx.path_graph(3))
        with pytest.raises(NotAnIndependentSetError):
            kernels.validate_mis_csr(csr, np.array([True, True, False]))

    def test_rejects_undominated_node(self):
        csr = csr_from_graph(nx.path_graph(3))
        with pytest.raises(NotMaximalError):
            kernels.validate_mis_csr(csr, np.array([True, False, False]))
