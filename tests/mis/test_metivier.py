"""Tests for the Métivier et al. MIS algorithm (both engines)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.mis.metivier import MetivierMIS, metivier_mis, metivier_mis_congest
from repro.mis.validation import assert_valid_mis


class TestFastEngine:
    def test_valid_on_assorted_graphs(self, assorted_graph):
        result = metivier_mis(assorted_graph, seed=3)
        assert_valid_mis(assorted_graph, result.mis)

    def test_reproducible(self, arb3_graph):
        assert metivier_mis(arb3_graph, seed=5).mis == metivier_mis(arb3_graph, seed=5).mis

    def test_seeds_vary_output(self, arb3_graph):
        outputs = {frozenset(metivier_mis(arb3_graph, seed=s).mis) for s in range(8)}
        assert len(outputs) > 1

    def test_logarithmic_iterations(self):
        # O(log n) w.h.p.; allow a generous constant.
        from repro.graphs.generators import bounded_arboricity_graph

        g = bounded_arboricity_graph(2000, 3, seed=1)
        result = metivier_mis(g, seed=1)
        assert result.iterations <= 8 * math.log2(2000)

    def test_active_history_strictly_decreasing(self, arb3_graph):
        result = metivier_mis(arb3_graph, seed=2)
        history = result.active_history
        assert all(a > b for a, b in zip(history, history[1:]))

    def test_empty_graph(self):
        result = metivier_mis(nx.Graph(), seed=0)
        assert result.mis == set()
        assert result.iterations == 0

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(7)
        assert metivier_mis(g, seed=0).mis == {7}

    def test_complete_graph_single_winner(self):
        result = metivier_mis(nx.complete_graph(20), seed=1)
        assert len(result.mis) == 1
        assert result.iterations == 1

    def test_isolated_nodes_all_join(self):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        assert metivier_mis(g, seed=0).mis == {0, 1, 2, 3, 4}

    def test_completed_flag(self, arb3_graph):
        assert metivier_mis(arb3_graph, seed=0).extra["completed"]

    def test_iteration_cap_respected(self, arb3_graph):
        result = metivier_mis(arb3_graph, seed=0, max_iterations=1)
        assert result.iterations == 1
        assert not result.extra["completed"]


class TestCongestEngine:
    def test_bit_identical_to_fast(self, assorted_graph):
        fast = metivier_mis(assorted_graph, seed=9)
        slow = metivier_mis_congest(assorted_graph, seed=9)
        assert fast.mis == slow.mis

    def test_three_rounds_per_iteration(self, arb3_graph):
        fast = metivier_mis(arb3_graph, seed=4)
        slow = metivier_mis_congest(arb3_graph, seed=4)
        assert slow.congest_rounds <= 3 * fast.iterations
        assert slow.iterations == fast.iterations

    def test_congest_budget_respected(self, small_tree):
        result = metivier_mis_congest(small_tree, seed=1, enforce_congest=True)
        assert result.metrics.congest_compliant
        assert_valid_mis(small_tree, result.mis)

    def test_message_count_bounded_by_edge_activity(self, small_tree):
        result = metivier_mis_congest(small_tree, seed=1)
        m = small_tree.number_of_edges()
        # Per iteration each live edge carries at most 2 key msgs + 2
        # join/leave msgs in each direction.
        assert result.metrics.total_messages <= 4 * m * result.iterations + 4 * m
