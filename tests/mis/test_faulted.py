"""Tests for the fault-injected MIS orchestration (`run_under_faults`):
every engine must end with an MIS of the *surviving* subgraph, the repair
accounting must add up, and same-seed runs must be telemetry-identical.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.faults import (
    CorruptAdversary,
    CrashSchedule,
    DropAdversary,
    DuplicateAdversary,
    compose,
)
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.mis.faulted import run_under_faults
from repro.mis.registry import available_node_programs
from repro.mis.validation import is_maximal_independent_set
from repro.obs.events import EVENT_FAULT
from repro.obs.manifest import RunManifest
from repro.obs.session import ObsSession, SimulatorObserver
from repro.obs.sinks import MemorySink
from repro.obs.summary import diff_streams

ENGINES = available_node_programs()


def assert_fault_contract(graph, result):
    """The graceful-degradation contract, checked independently of the
    library's own validation: final MIS ⊆ survivors, independent and
    maximal on the surviving subgraph."""
    survivors = set(graph.nodes) - set(result.crashed)
    assert result.ok, result.summary()
    assert set(result.mis) <= survivors
    assert is_maximal_independent_set(
        graph.subgraph(survivors), set(result.mis)
    )


class TestEnginesUnderFaults:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_crash_stop(self, engine):
        graph = random_tree(40, seed=2)
        result = run_under_faults(
            graph,
            algorithm=engine,
            seed=1,
            crash_schedule=CrashSchedule.single(2, [0, 5, 11]),
        )
        assert result.crashed == frozenset({0, 5, 11})
        assert_fault_contract(graph, result)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_message_adversary(self, engine):
        graph = bounded_arboricity_graph(50, 2, seed=3)
        result = run_under_faults(
            graph,
            algorithm=engine,
            seed=4,
            adversary=compose(DropAdversary(0.05), DuplicateAdversary(0.05)),
        )
        assert result.faults_injected > 0
        assert_fault_contract(graph, result)

    def test_crash_recovery_survivor_includes_recovered(self):
        graph = random_tree(30, seed=6)
        result = run_under_faults(
            graph,
            algorithm="metivier",
            seed=0,
            crash_schedule=CrashSchedule.parse(["2:0,1"], ["8:0"]),
        )
        assert result.recovered == frozenset({0})
        assert result.crashed == frozenset({1})
        assert_fault_contract(graph, result)

    def test_fault_free_run_needs_no_repair(self):
        graph = random_tree(25, seed=1)
        result = run_under_faults(graph, algorithm="metivier", seed=3)
        assert result.repair is None
        assert result.repair_rounds == 0
        assert result.total_rounds == result.rounds
        assert_fault_contract(graph, result)

    def test_repair_skippable_for_degradation_measurement(self):
        graph = random_tree(40, seed=2)
        result = run_under_faults(
            graph,
            algorithm="metivier",
            seed=1,
            crash_schedule=CrashSchedule.single(1, [3]),
            repair_output=False,
        )
        assert result.repair is None
        # The raw validation is still reported either way.
        assert result.validation.survivors == frozenset(set(graph.nodes) - {3})

    def test_total_rounds_adds_repair_cost(self):
        graph = random_tree(40, seed=2)
        result = run_under_faults(
            graph,
            algorithm="metivier",
            seed=1,
            crash_schedule=CrashSchedule.single(2, [0, 5, 11]),
        )
        if result.repair is not None:
            assert result.total_rounds == result.rounds + result.repair.repair_rounds

    def test_same_seed_same_result(self):
        graph = bounded_arboricity_graph(40, 2, seed=1)
        kwargs = dict(
            algorithm="ghaffari",
            seed=9,
            adversary=compose(DropAdversary(0.1), CorruptAdversary(0.02)),
            crash_schedule=CrashSchedule.single(3, [2]),
        )
        first = run_under_faults(graph, **kwargs)
        second = run_under_faults(graph, **kwargs)
        assert first.mis == second.mis
        assert first.metrics.fault_counts == second.metrics.fault_counts
        assert first.total_rounds == second.total_rounds


class TestPropertyFaultContract:
    @given(
        n=st.integers(min_value=4, max_value=32),
        graph_seed=st.integers(min_value=0, max_value=50),
        run_seed=st.integers(min_value=0, max_value=50),
        crash_round=st.integers(min_value=0, max_value=6),
        crash_picks=st.sets(st.integers(min_value=0, max_value=31), max_size=4),
        engine=st.sampled_from(ENGINES),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_every_engine_is_mis_of_surviving_subgraph(
        self, n, graph_seed, run_seed, crash_round, crash_picks, engine
    ):
        graph = nx.gnp_random_graph(n, 0.2, seed=graph_seed)
        crashes = {v for v in crash_picks if v < n}
        schedule = (
            CrashSchedule.single(crash_round, crashes) if crashes else None
        )
        result = run_under_faults(
            graph,
            algorithm=engine,
            seed=run_seed,
            adversary=DropAdversary(0.05),
            crash_schedule=schedule,
        )
        assert_fault_contract(graph, result)


def memory_observer():
    sink = MemorySink()
    manifest = RunManifest(run_id="t", kind="test", created_at="t")
    session = ObsSession("unused", manifest, sink)
    return SimulatorObserver(session), sink


class TestObsDeterminism:
    def test_same_seed_same_adversary_identical_streams(self):
        graph = random_tree(30, seed=4)

        def stream():
            observer, sink = memory_observer()
            run_under_faults(
                graph,
                algorithm="metivier",
                seed=7,
                adversary=compose(DropAdversary(0.1), DuplicateAdversary(0.05)),
                crash_schedule=CrashSchedule.parse(["2:1"], ["6:1"]),
                observer=observer,
            )
            return [event.to_dict() for event in sink.events]

        first, second = stream(), stream()
        diff = diff_streams(first, second)
        assert diff.identical, diff.render()
        assert any(e["kind"] == EVENT_FAULT for e in first)
