"""Tests for the Lenzen-Wattenhofer tree MIS."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.generators import random_binary_tree, random_tree
from repro.mis.lenzen_wattenhofer import (
    lenzen_wattenhofer_tree_mis,
    shattering_length,
)
from repro.mis.validation import assert_valid_mis


class TestShatteringLength:
    def test_formula(self):
        n = 2**16
        expected = math.ceil(2.0 * math.sqrt(16 * 4))
        assert shattering_length(n) == expected

    def test_minimum_one(self):
        assert shattering_length(1) == 1
        assert shattering_length(3) == 1

    def test_scales_with_constant(self):
        assert shattering_length(10**6, constant=4.0) >= 2 * shattering_length(10**6, constant=2.0) - 1

    def test_sublogarithmic(self):
        n = 2**30
        assert shattering_length(n) < math.log2(n) * 2


class TestLWTreeMis:
    def test_valid_on_random_trees(self):
        for seed in range(5):
            t = random_tree(200, seed=seed)
            result = lenzen_wattenhofer_tree_mis(t, seed=seed)
            assert_valid_mis(t, result.mis)

    def test_valid_on_binary_tree_and_path(self):
        for g in (random_binary_tree(150, seed=1), nx.path_graph(100)):
            assert_valid_mis(g, lenzen_wattenhofer_tree_mis(g, seed=2).mis)

    def test_valid_on_forest(self):
        forest = nx.union(
            random_tree(60, seed=1),
            nx.relabel_nodes(random_tree(40, seed=2), {i: i + 100 for i in range(40)}),
        )
        assert_valid_mis(forest, lenzen_wattenhofer_tree_mis(forest, seed=3).mis)

    def test_rejects_non_forest(self):
        with pytest.raises(GraphError):
            lenzen_wattenhofer_tree_mis(nx.cycle_graph(6), seed=0)

    def test_general_graph_with_check_disabled(self):
        g = nx.cycle_graph(7)
        result = lenzen_wattenhofer_tree_mis(g, seed=0, validate_forest=False)
        assert_valid_mis(g, result.mis)

    def test_phase1_respects_budget(self):
        t = random_tree(500, seed=4)
        result = lenzen_wattenhofer_tree_mis(t, seed=4)
        assert result.iterations <= result.extra["phase1_budget"]

    def test_shattering_components_small(self):
        # The LW claim: after phase 1 the residual components are small.
        t = random_tree(3000, seed=5)
        result = lenzen_wattenhofer_tree_mis(t, seed=5)
        largest = result.extra["phase2_largest_component"]
        assert largest <= max(1, 3000 // 10)  # crude: far below n

    def test_reproducible(self):
        t = random_tree(120, seed=6)
        assert (
            lenzen_wattenhofer_tree_mis(t, seed=7).mis
            == lenzen_wattenhofer_tree_mis(t, seed=7).mis
        )

    def test_small_constant_pushes_work_to_phase2(self):
        t = random_tree(1000, seed=8)
        eager = lenzen_wattenhofer_tree_mis(t, seed=8, constant=0.5)
        patient = lenzen_wattenhofer_tree_mis(t, seed=8, constant=4.0)
        assert_valid_mis(t, eager.mis)
        assert_valid_mis(t, patient.mis)
        assert eager.extra["residual_after_phase1"] >= patient.extra["residual_after_phase1"]

    def test_empty_and_single(self):
        assert lenzen_wattenhofer_tree_mis(nx.Graph(), seed=0).mis == set()
        g = nx.Graph()
        g.add_node(3)
        assert lenzen_wattenhofer_tree_mis(g, seed=0).mis == {3}
