"""Tests for the columnar bulk engines (Métivier, Luby A/B, Ghaffari).

The three-engine equivalence classes here are tier-1: they pin the
DESIGN.md §4 contract that for every seed the CONGEST node program, the
scalar fast engine, and the bulk columnar engine return the *same* MIS.
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np
import pytest

import repro.mis.bulk as bulk_module
from repro.errors import AlgorithmError
from repro.graphs.csr import csr_from_graph
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.mis.bulk import (
    csr_adjacency,
    ghaffari_mis_bulk,
    luby_a_mis_bulk,
    luby_b_mis_bulk,
    metivier_mis_bulk,
)
from repro.mis.ghaffari import ghaffari_mis, ghaffari_mis_congest
from repro.mis.luby import (
    luby_a_mis,
    luby_a_mis_congest,
    luby_b_mis,
    luby_b_mis_congest,
)
from repro.mis.metivier import metivier_mis, metivier_mis_congest
from repro.mis.validation import assert_valid_mis

ENGINE_TRIPLES = [
    pytest.param(metivier_mis_bulk, metivier_mis, metivier_mis_congest, id="metivier"),
    pytest.param(luby_a_mis_bulk, luby_a_mis, luby_a_mis_congest, id="luby-a"),
    pytest.param(luby_b_mis_bulk, luby_b_mis, luby_b_mis_congest, id="luby-b"),
    pytest.param(ghaffari_mis_bulk, ghaffari_mis, ghaffari_mis_congest, id="ghaffari"),
]


class TestCsrAdjacency:
    def test_round_trip_degrees(self, arb3_graph):
        node_ids, indptr, indices = csr_adjacency(arb3_graph)
        for i, v in enumerate(node_ids):
            assert indptr[i + 1] - indptr[i] == arb3_graph.degree(int(v))

    def test_neighbor_positions(self, path5):
        node_ids, indptr, indices = csr_adjacency(path5)
        # Node 1 (position 1) neighbors are positions 0 and 2.
        assert list(indices[indptr[1] : indptr[2]]) == [0, 2]

    def test_non_contiguous_labels(self):
        g = nx.Graph([(10, 20), (20, 40)])
        node_ids, indptr, indices = csr_adjacency(g)
        assert list(node_ids) == [10, 20, 40]
        assert indptr[-1] == 4

    def test_string_labels_no_longer_crash(self):
        # Regression: the original implementation did np.array(sorted(G)),
        # which raised on non-integer labels (and TypeError'd on mixed ones).
        g = nx.Graph([("b", "a"), ("a", "c")])
        node_ids, indptr, indices = csr_adjacency(g)
        assert list(node_ids) == ["a", "b", "c"]
        assert indptr[-1] == 4
        # Position 0 is "a"; its neighbors are positions 1 ("b") and 2 ("c").
        assert sorted(indices[indptr[0] : indptr[1]]) == [1, 2]


class TestNonIntegerLabels:
    @pytest.mark.parametrize("bulk_fn,scalar_fn,_congest", ENGINE_TRIPLES)
    def test_string_labeled_graph(self, bulk_fn, scalar_fn, _congest):
        g = nx.Graph([("b", "a"), ("a", "c"), ("c", "d"), ("d", "e")])
        g.add_node("lonely")
        result = bulk_fn(g, seed=3)
        assert result.mis <= set(g.nodes)
        assert "lonely" in result.mis
        assert_valid_mis(g, result.mis)

    def test_mixed_unsortable_labels(self):
        g = nx.Graph([("a", 1), (1, (2, 3))])
        result = metivier_mis_bulk(g, seed=0)
        assert_valid_mis(g, result.mis)


class TestBitIdentity:
    """Tier-1: bulk == scalar-fast == CONGEST for every algorithm and seed."""

    @pytest.mark.parametrize("bulk_fn,scalar_fn,congest_fn", ENGINE_TRIPLES)
    def test_three_engines_agree(self, assorted_graph, bulk_fn, scalar_fn, congest_fn):
        for seed in (0, 7):
            fast = scalar_fn(assorted_graph, seed=seed)
            bulk = bulk_fn(assorted_graph, seed=seed)
            slow = congest_fn(assorted_graph, seed=seed)
            assert bulk.mis == fast.mis == slow.mis
            assert bulk.iterations == fast.iterations
            assert bulk.active_history == fast.active_history

    @pytest.mark.parametrize("bulk_fn,scalar_fn,_congest", ENGINE_TRIPLES)
    def test_identical_on_larger_graph(self, bulk_fn, scalar_fn, _congest):
        g = bounded_arboricity_graph(3000, 3, seed=5)
        assert bulk_fn(g, seed=9).mis == scalar_fn(g, seed=9).mis

    @pytest.mark.parametrize("bulk_fn,scalar_fn,_congest", ENGINE_TRIPLES)
    def test_identical_with_isolated_nodes(self, bulk_fn, scalar_fn, _congest):
        g = nx.Graph()
        g.add_nodes_from(range(10))
        g.add_edges_from([(0, 1), (2, 3)])
        assert bulk_fn(g, seed=1).mis == scalar_fn(g, seed=1).mis

    @pytest.mark.parametrize("bulk_fn,scalar_fn,_congest", ENGINE_TRIPLES)
    def test_accepts_prebuilt_csr(self, arb3_graph, bulk_fn, scalar_fn, _congest):
        # A CSRGraph input (the networkx-free path) draws the same
        # randomness as the nx.Graph input because integer labels key the
        # rng either way.
        csr = csr_from_graph(arb3_graph)
        assert bulk_fn(csr, seed=6).mis == scalar_fn(arb3_graph, seed=6).mis


class TestExhaustion:
    """The bulk engines share the scalar exhaustion contract: a partial
    result with ``extra["completed"] = False``, never a silent truncation."""

    def test_partial_result_flagged(self, arb3_graph):
        fast = metivier_mis(arb3_graph, seed=2, max_iterations=1)
        bulk = metivier_mis_bulk(arb3_graph, seed=2, max_iterations=1)
        assert bulk.extra["completed"] is False
        assert fast.extra["completed"] is False
        assert bulk.mis == fast.mis
        assert bulk.iterations == fast.iterations == 1

    @pytest.mark.parametrize("bulk_fn,scalar_fn,_congest", ENGINE_TRIPLES)
    def test_partial_results_bit_identical(self, arb3_graph, bulk_fn, scalar_fn, _congest):
        fast = scalar_fn(arb3_graph, seed=5, max_iterations=2)
        bulk = bulk_fn(arb3_graph, seed=5, max_iterations=2)
        assert bulk.mis == fast.mis
        assert bulk.extra["completed"] == fast.extra["completed"]

    def test_defensive_no_winner_break_raises(self, arb3_graph, monkeypatch):
        # A Métivier iteration with active nodes always has a winner (the
        # globally maximal (priority, id) node wins its neighborhood).  If a
        # kernel bug ever produced zero winners the engine must fail loudly,
        # not return a truncated MIS.
        def no_winners(csr, contenders, keys, **kwargs):
            return np.zeros(csr.n, dtype=bool)

        monkeypatch.setattr(bulk_module, "masked_competition", no_winners)
        with pytest.raises(AlgorithmError):
            metivier_mis_bulk(arb3_graph, seed=0)
        with pytest.raises(AlgorithmError):
            luby_a_mis_bulk(arb3_graph, seed=0)


class TestBulkCorrectness:
    def test_valid_mis(self, assorted_graph):
        result = metivier_mis_bulk(assorted_graph, seed=4)
        assert_valid_mis(assorted_graph, result.mis)

    def test_empty_graph(self):
        assert metivier_mis_bulk(nx.Graph(), seed=0).mis == set()

    def test_complete_graph(self):
        result = metivier_mis_bulk(nx.complete_graph(40), seed=1)
        assert len(result.mis) == 1

    def test_large_tree(self):
        t = random_tree(20_000, seed=2)
        result = metivier_mis_bulk(t, seed=2)
        # Spot-validate independence (full maximality check is O(n) too,
        # but use the library validator on the whole thing — it's fine).
        assert_valid_mis(t, result.mis)

    def test_completed_flag(self, arb3_graph):
        assert metivier_mis_bulk(arb3_graph, seed=1).extra["completed"]


class TestBulkPerformance:
    def test_faster_than_scalar_at_scale(self):
        g = bounded_arboricity_graph(8000, 2, seed=3)
        start = time.perf_counter()
        metivier_mis(g, seed=3)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        metivier_mis_bulk(g, seed=3)
        bulk_seconds = time.perf_counter() - start
        # The CSR build dominates the bulk path; still expect a clear win.
        assert bulk_seconds < scalar_seconds
