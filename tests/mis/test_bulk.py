"""Tests for the vectorized bulk Métivier engine."""

from __future__ import annotations

import time

import networkx as nx
import numpy as np
import pytest

from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.mis.bulk import csr_adjacency, metivier_mis_bulk
from repro.mis.metivier import metivier_mis
from repro.mis.validation import assert_valid_mis


class TestCsrAdjacency:
    def test_round_trip_degrees(self, arb3_graph):
        node_ids, indptr, indices = csr_adjacency(arb3_graph)
        for i, v in enumerate(node_ids):
            assert indptr[i + 1] - indptr[i] == arb3_graph.degree(int(v))

    def test_neighbor_positions(self, path5):
        node_ids, indptr, indices = csr_adjacency(path5)
        # Node 1 (position 1) neighbors are positions 0 and 2.
        assert list(indices[indptr[1] : indptr[2]]) == [0, 2]

    def test_non_contiguous_labels(self):
        g = nx.Graph([(10, 20), (20, 40)])
        node_ids, indptr, indices = csr_adjacency(g)
        assert list(node_ids) == [10, 20, 40]
        assert indptr[-1] == 4


class TestBitIdentity:
    def test_identical_to_scalar_engine(self, assorted_graph):
        for seed in (0, 7):
            fast = metivier_mis(assorted_graph, seed=seed)
            bulk = metivier_mis_bulk(assorted_graph, seed=seed)
            assert bulk.mis == fast.mis
            assert bulk.iterations == fast.iterations
            assert bulk.active_history == fast.active_history

    def test_identical_on_larger_graph(self):
        g = bounded_arboricity_graph(3000, 3, seed=5)
        fast = metivier_mis(g, seed=9)
        bulk = metivier_mis_bulk(g, seed=9)
        assert bulk.mis == fast.mis

    def test_identical_with_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from(range(10))
        g.add_edges_from([(0, 1), (2, 3)])
        assert metivier_mis_bulk(g, seed=1).mis == metivier_mis(g, seed=1).mis


class TestBulkCorrectness:
    def test_valid_mis(self, assorted_graph):
        result = metivier_mis_bulk(assorted_graph, seed=4)
        assert_valid_mis(assorted_graph, result.mis)

    def test_empty_graph(self):
        assert metivier_mis_bulk(nx.Graph(), seed=0).mis == set()

    def test_complete_graph(self):
        result = metivier_mis_bulk(nx.complete_graph(40), seed=1)
        assert len(result.mis) == 1

    def test_large_tree(self):
        t = random_tree(20_000, seed=2)
        result = metivier_mis_bulk(t, seed=2)
        # Spot-validate independence (full maximality check is O(n) too,
        # but use the library validator on the whole thing — it's fine).
        assert_valid_mis(t, result.mis)

    def test_completed_flag(self, arb3_graph):
        assert metivier_mis_bulk(arb3_graph, seed=1).extra["completed"]


class TestBulkPerformance:
    def test_faster_than_scalar_at_scale(self):
        g = bounded_arboricity_graph(8000, 2, seed=3)
        start = time.perf_counter()
        metivier_mis(g, seed=3)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        metivier_mis_bulk(g, seed=3)
        bulk_seconds = time.perf_counter() - start
        # The CSR build dominates the bulk path; still expect a clear win.
        assert bulk_seconds < scalar_seconds
