"""Property-based tests: the linter on *generated* algorithm sources.

Hypothesis synthesizes node programs with randomized identifiers and a
randomized mix of injected violations, then checks three invariants:

* every injected violation produces a finding of the right rule;
* adding a ``# repro: lint-ignore[RULE]`` on the violating line silences
  exactly that finding;
* programs synthesized without violations lint clean.
"""

from __future__ import annotations

import keyword

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_source
from repro.lint.config import PUBLIC_CONTEXT_SURFACE, LintConfig

CFG = LintConfig(determinism_packages=("*",))

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
    and s not in PUBLIC_CONTEXT_SURFACE
    and s not in {"self", "ctx", "inbox"}
)


def render_program(class_name: str, body_lines):
    lines = [
        "from repro.congest.algorithm import NodeAlgorithm",
        "",
        "",
        f"class {class_name.capitalize()}(NodeAlgorithm):",
        "    def on_round(self, ctx, inbox):",
    ]
    lines.extend(f"        {line}" for line in body_lines)
    return "\n".join(lines) + "\n"


#: violation factories: identifier -> (source line, expected rule)
VIOLATIONS = (
    lambda name: (f"self.{name} = len(inbox)", "R1"),
    lambda name: (f"self.{name} += 1", "R1"),
    lambda name: (f"{name} = ctx._outbox", "R2"),
    lambda name: (f"{name} = ctx.{name}_backdoor", "R2"),
    lambda name: ("ctx.broadcast(tuple(ctx.neighbors))", "R4"),
    lambda name: (f'ctx.send(0, ({name!r}, b"x"))', "R4"),
    lambda name: (f"ctx.send(0, [{name} for {name} in ctx.neighbors])", "R4"),
)

CLEAN_LINES = (
    lambda name: f"ctx.state[{name!r}] = len(inbox)",
    lambda name: f"ctx.send(0, ({name!r}, ctx.node, ctx.degree()))",
    lambda name: f"{name} = ctx.round_index + ctx.n",
    lambda name: "ctx.broadcast(('deg', len(ctx.neighbors)))",
    lambda name: "ctx.halt(('done', ctx.node))",
)


@given(
    class_name=identifiers,
    names=st.lists(identifiers, min_size=1, max_size=4, unique=True),
    picks=st.lists(
        st.integers(min_value=0, max_value=len(VIOLATIONS) - 1),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_injected_violations_all_fire(class_name, names, picks):
    body, expected = [], []
    for i, pick in enumerate(picks):
        line, rule = VIOLATIONS[pick](names[i % len(names)])
        body.append(line)
        expected.append((len(body) + 5, rule))  # header is 5 lines
    source = render_program(class_name, body)
    findings = lint_source(source, path="gen.py", config=CFG)
    found = {(f.line, f.rule) for f in findings}
    for line_rule in expected:
        assert line_rule in found, f"missing {line_rule} in:\n{source}"


@given(
    class_name=identifiers,
    name=identifiers,
    pick=st.integers(min_value=0, max_value=len(VIOLATIONS) - 1),
)
@settings(max_examples=60, deadline=None)
def test_suppression_silences_each_rule(class_name, name, pick):
    line, rule = VIOLATIONS[pick](name)
    suppressed = render_program(
        class_name, [f"{line}  # repro: lint-ignore[{rule}]"]
    )
    findings = lint_source(suppressed, path="gen.py", config=CFG)
    assert [f for f in findings if f.rule == rule] == [], suppressed


@given(
    class_name=identifiers,
    names=st.lists(identifiers, min_size=1, max_size=5, unique=True),
    picks=st.lists(
        st.integers(min_value=0, max_value=len(CLEAN_LINES) - 1),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=60, deadline=None)
def test_compliant_generated_programs_lint_clean(class_name, names, picks):
    body = [CLEAN_LINES[pick](names[i % len(names)]) for i, pick in enumerate(picks)]
    source = render_program(class_name, body)
    findings = lint_source(source, path="gen.py", config=CFG)
    assert findings == [], f"false positives in:\n{source}"
