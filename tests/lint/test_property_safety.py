"""Property-based tests: the S-family on *generated* engine modules.

Hypothesis synthesizes engine-layer modules — pool dispatch, shared
memory attachments, dtype-annotated array code — with randomized
identifiers and a randomized set of planted violations, then checks the
same three invariants the R-family property tests pin:

* every planted violation produces a finding of the right rule;
* a ``# repro: lint-ignore[RULE]`` on the violating line silences
  exactly that finding;
* modules synthesized without violations lint clean (no false
  positives on clean engine code).
"""

from __future__ import annotations

import keyword

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_source
from repro.lint.config import LintConfig

CFG = LintConfig(safety_packages=("*",), determinism_packages=())

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
    and s not in {"np", "pool", "shm", "seed", "task", "arr", "idx", "rng"}
)


def render_module(name: str, body_lines, extra_top=()):
    """An engine-ish module: numpy import, a pool task, a dispatcher."""
    lines = ["import numpy as np", ""]
    lines.extend(extra_top)
    lines.append("")
    lines.append("def task(seed, n):")
    lines.append("    return seed + n")
    lines.append("")
    lines.append(f"def {name}_dispatch(pool, shm, seed, n):")
    lines.extend(f"    {line}" for line in body_lines)
    lines.append("    pool.submit(task, seed, n)")
    return "\n".join(lines) + "\n"


#: violation factories: identifier -> (body line(s), top-level line(s),
#: expected rule)
VIOLATIONS = (
    # S1: unfrozen attachment
    lambda name: (
        [f"{name} = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)"],
        [],
        "S1",
    ),
    # S2: module-level live resource
    lambda name: ([], [f"{name} = open('{name}.txt')"], "S2"),
    # S3: mixed-width arithmetic
    lambda name: (
        [
            f"{name}_a = np.zeros(n, dtype=np.int32)",
            f"{name}_b = np.zeros(n, dtype=np.int64)",
            f"{name}_c = {name}_a + {name}_b",
        ],
        [],
        "S3",
    ),
    # S3: narrowing downcast
    lambda name: (
        [
            f"{name}_w = np.zeros(n, dtype=np.int64)",
            f"{name}_n = {name}_w.astype(np.int16)",
        ],
        [],
        "S3",
    ),
    # S4: generator state shipped to the pool
    lambda name: (
        [
            f"{name}_rng = np.random.default_rng(seed)",
            f"pool.submit(task, {name}_rng, n)",
        ],
        [],
        "S4",
    ),
)

CLEAN_LINES = (
    lambda name: [
        f"{name} = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)",
        f"{name}.flags.writeable = False",
    ],
    lambda name: [
        f"{name}_a = np.zeros(n, dtype=np.int64)",
        f"{name}_b = np.zeros(n, dtype=np.int64)",
        f"{name}_c = {name}_a + {name}_b",
    ],
    lambda name: [
        f"{name}_idx = np.arange(n, dtype=np.int64)",
        f"{name}_g = np.zeros(n, dtype=np.int64)[{name}_idx]",
    ],
    lambda name: [f"{name}_w = np.zeros(n, dtype=np.int32).astype(np.int64)"],
    lambda name: [f"pool.submit(task, seed, n)"],
)


def lint(source: str):
    return lint_source(source, path="gen.py", config=CFG, module_name="gen")


@settings(max_examples=40, deadline=None)
@given(
    name=identifiers,
    clean_picks=st.lists(
        st.sampled_from(CLEAN_LINES), min_size=1, max_size=3
    ),
)
def test_clean_engine_modules_lint_clean(name, clean_picks):
    body = []
    for i, pick in enumerate(clean_picks):
        body.extend(pick(f"{name}{i}"))
    findings = lint(render_module(name, body))
    assert findings == [], [f.render() for f in findings]


@settings(max_examples=40, deadline=None)
@given(
    name=identifiers,
    violation=st.sampled_from(VIOLATIONS),
    clean_pick=st.sampled_from(CLEAN_LINES),
)
def test_planted_violations_are_caught(name, violation, clean_pick):
    bad_body, bad_top, rule = violation(name)
    body = clean_pick(f"{name}x") + bad_body
    findings = lint(render_module(name, body, extra_top=bad_top))
    assert rule in {f.rule for f in findings}, (
        rule,
        [f.render() for f in findings],
    )


@settings(max_examples=40, deadline=None)
@given(name=identifiers, violation=st.sampled_from(VIOLATIONS))
def test_lint_ignore_silences_exactly_the_planted_rule(name, violation):
    bad_body, bad_top, rule = violation(name)
    body = [
        line + f"  # repro: lint-ignore[{rule}]" for line in bad_body
    ]
    top = [line + f"  # repro: lint-ignore[{rule}]" for line in bad_top]
    findings = lint(render_module(name, body, extra_top=top))
    assert rule not in {f.rule for f in findings}, [
        f.render() for f in findings
    ]
