"""Tier-1 gate: the shipped tree is CONGEST model-compliant.

This is the regression property the lint subsystem exists for: every
``NodeAlgorithm`` in ``src/repro`` obeys R1-R5, as checked by the same
configuration CI uses (``[tool.repro.lint]`` in pyproject.toml).  Any new
algorithm that cheats — instance state, private simulator access, ambient
randomness, oversized payloads — turns this test red with a file:line
finding.
"""

from __future__ import annotations

import os

import repro
from repro.lint import lint_paths, load_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
PYPROJECT = os.path.join(REPO_ROOT, "pyproject.toml")
SRC_REPRO = os.path.dirname(repro.__file__)


def test_pyproject_config_is_present():
    assert os.path.isfile(PYPROJECT)
    config = load_config(PYPROJECT)
    assert config.paths == ("src/repro",)
    assert config.disable == ()


def test_src_repro_is_model_compliant():
    config = load_config(PYPROJECT)
    findings = lint_paths([SRC_REPRO], config=config)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"model-compliance findings:\n{rendered}"


def test_self_lint_actually_saw_the_node_programs():
    # Guard against the lint pass silently checking nothing: the tree
    # contains a known population of algorithm modules.
    from repro.lint.config import DEFAULT_CONFIG
    from repro.lint.engine import build_model, iter_python_files

    algorithm_classes = set()
    for path in iter_python_files([SRC_REPRO]):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        model = build_model(source, path, DEFAULT_CONFIG)
        algorithm_classes |= model.algorithm_classes
    # The seed tree ships at least these node programs.
    assert {
        "PhasedMISNodeProgram",
        "BoundedArbNodeProgram",
        "LinialMISProgram",
        "IsraeliItaiMatching",
        "LeaderElectionBFS",
        "ConvergecastCount",
        "GhaffariMIS",
        "LubyAMIS",
        "LubyBMIS",
        "MetivierMIS",
    } <= algorithm_classes


def test_fault_modules_are_in_determinism_scope():
    # The fault-injection layer promises seed-deterministic fault traces,
    # which only holds if R3 (no ambient randomness/clocks) is enforced on
    # its modules the same as on the algorithms it perturbs.
    config = load_config(PYPROJECT)
    for module in (
        "repro.congest.faults",
        "repro.congest.simulator",
        "repro.congest.asynchronous",
        "repro.core.repair",
        "repro.mis.faulted",
    ):
        assert config.in_determinism_scope(module), module
