"""Tier-1 gate: the shipped tree is model-compliant and engine-safe.

This is the regression property the lint subsystem exists for: every
``NodeAlgorithm`` in ``src/repro`` obeys R1-R5 and every engine-layer
module obeys S1-S5, as checked by the same configuration CI uses
(``[tool.repro.lint]`` in pyproject.toml plus the committed baseline).
Any new algorithm that cheats — instance state, private simulator
access, ambient randomness, oversized payloads — and any new engine
hazard — unfrozen shared-memory attachment, fork-captured state, silent
downcast — turns this test red with a file:line finding.
"""

from __future__ import annotations

import dataclasses
import os

import repro
from repro.lint import apply_baseline, lint_paths, load_baseline, load_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
PYPROJECT = os.path.join(REPO_ROOT, "pyproject.toml")
BASELINE = os.path.join(REPO_ROOT, ".repro-lint-baseline.json")
SRC_REPRO = os.path.dirname(repro.__file__)


def _relativized(findings):
    return [
        dataclasses.replace(
            f, path=os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/")
        )
        for f in findings
    ]


def test_pyproject_config_is_present():
    assert os.path.isfile(PYPROJECT)
    config = load_config(PYPROJECT)
    assert config.paths == ("src/repro",)
    assert config.disable == ()
    assert config.select == ()


def test_src_repro_is_model_compliant():
    config = load_config(PYPROJECT)
    findings = _relativized(lint_paths([SRC_REPRO], config=config))
    baseline = load_baseline(BASELINE)
    new, grandfathered = apply_baseline(findings, baseline)
    rendered = "\n".join(f.render() for f in new)
    assert new == [], f"non-baselined findings:\n{rendered}"
    # The committed baseline must not rot: every grandfathered entry
    # still matches a real finding (otherwise prune the baseline), and
    # the grandfathered population stays the intentional wire-dtype
    # narrowing in the MPC runtime, nothing more.
    assert baseline.stale_entries() == []
    assert {(f.rule, f.path) for f in grandfathered} == {
        ("S3", "src/repro/mpc/runtime.py")
    }


def test_both_rule_families_ran_on_the_tree():
    # Guard against the S-family silently deconfiguring: the safety scope
    # must cover the engine layers the differential tests lean on.
    config = load_config(PYPROJECT)
    for module in (
        "repro.mpc.runtime",
        "repro.mpc.engines",
        "repro.mis.csr",
        "repro.core.bulk",
        "repro.graphs.csr",
    ):
        assert config.in_safety_scope(module), module
    assert not config.in_safety_scope("repro.congest.simulator")


def test_self_lint_actually_saw_the_node_programs():
    # Guard against the lint pass silently checking nothing: the tree
    # contains a known population of algorithm modules.
    from repro.lint.config import DEFAULT_CONFIG
    from repro.lint.engine import build_model, iter_python_files

    algorithm_classes = set()
    for path in iter_python_files([SRC_REPRO]):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        model = build_model(source, path, DEFAULT_CONFIG)
        algorithm_classes |= model.algorithm_classes
    # The seed tree ships at least these node programs.
    assert {
        "PhasedMISNodeProgram",
        "BoundedArbNodeProgram",
        "LinialMISProgram",
        "IsraeliItaiMatching",
        "LeaderElectionBFS",
        "ConvergecastCount",
        "GhaffariMIS",
        "LubyAMIS",
        "LubyBMIS",
        "MetivierMIS",
    } <= algorithm_classes


def test_fault_modules_are_in_determinism_scope():
    # The fault-injection layer promises seed-deterministic fault traces,
    # which only holds if R3 (no ambient randomness/clocks) is enforced on
    # its modules the same as on the algorithms it perturbs.
    config = load_config(PYPROJECT)
    for module in (
        "repro.congest.faults",
        "repro.congest.simulator",
        "repro.congest.asynchronous",
        "repro.core.repair",
        "repro.mis.faulted",
    ):
        assert config.in_determinism_scope(module), module
