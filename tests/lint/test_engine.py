"""Engine mechanics: suppressions, config parsing, discovery, errors."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.config import (
    DEFAULT_CONFIG,
    LintConfig,
    _read_lint_table,
    load_config,
)
from repro.lint.engine import iter_python_files, module_name_for_path

HEADER = "from repro.congest.algorithm import NodeAlgorithm\n"


def lint(body: str, **kwargs):
    return lint_source(HEADER + textwrap.dedent(body), path="fixture.py", **kwargs)


# -- suppressions ------------------------------------------------------------


def test_trailing_suppression_silences_named_rule():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.schedule = 1  # repro: lint-ignore[R1]
        """
    )
    assert findings == []


def test_bare_suppression_silences_all_rules():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.schedule = ctx._outbox  # repro: lint-ignore
        """
    )
    assert findings == []


def test_suppression_of_other_rule_does_not_silence():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.schedule = 1  # repro: lint-ignore[R4]
        """
    )
    assert [f.rule for f in findings] == ["R1"]


def test_comment_line_above_suppresses_next_line():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                # justified: schedule is identical on every node
                # repro: lint-ignore[R1]
                self.schedule = 1
        """
    )
    assert findings == []


def test_suppression_on_code_line_does_not_leak_to_next_line():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                x = 1  # repro: lint-ignore[R1]
                self.schedule = x
        """
    )
    assert [f.rule for f in findings] == ["R1"]


def test_multi_rule_suppression():
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.x = ctx._outbox  # repro: lint-ignore[R1, R2]
        """
    )
    assert findings == []


# -- parse errors ------------------------------------------------------------


def test_syntax_error_becomes_e1_finding():
    findings = lint_source("def broken(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].rule == "E1"
    assert findings[0].path == "broken.py"
    assert findings[0].line >= 1


# -- config ------------------------------------------------------------------


def test_default_config_round_trip(tmp_path):
    assert load_config(None) is DEFAULT_CONFIG
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        textwrap.dedent(
            """
            [tool.other]
            x = 1

            [tool.repro.lint]
            paths = ["src/alpha", "src/beta"]
            disable = ["R4"]
            determinism-packages = [
                "alpha.core",  # trailing comment
                "beta",
            ]

            [tool.after]
            y = 2
            """
        )
    )
    config = load_config(str(pyproject))
    assert config.paths == ("src/alpha", "src/beta")
    assert config.disable == ("R4",)
    assert config.determinism_packages == ("alpha.core", "beta")
    # Untouched keys keep their defaults.
    assert config.algorithm_base_classes == DEFAULT_CONFIG.algorithm_base_classes
    assert not config.rule_enabled("R4")
    assert config.rule_enabled("R1")


def test_fallback_toml_reader_matches_expectations():
    # The 3.9/3.10 path: no tomllib, the minimal reader takes over.
    table = _read_lint_table(
        textwrap.dedent(
            """
            [tool.repro.lint]
            paths = ["a", 'b']
            exclude = []
            single = "one"

            [tool.repro.lint.unrelated-subtable]
            ignored = true
            """
        )
    )
    assert table["paths"] == ["a", "b"]
    assert table["exclude"] == []
    assert table["single"] == "one"
    assert "ignored" not in table


def test_disabled_rule_is_skipped():
    config = LintConfig(disable=("R1",))
    findings = lint(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.schedule = 1
        """,
        config=config,
    )
    assert findings == []


def test_determinism_scope_matching():
    config = LintConfig(determinism_packages=("repro.mis",))
    assert config.in_determinism_scope("repro.mis")
    assert config.in_determinism_scope("repro.mis.luby")
    assert not config.in_determinism_scope("repro.misc")
    assert not config.in_determinism_scope("repro.analysis")
    assert LintConfig(determinism_packages=("*",)).in_determinism_scope("x.y")


# -- path handling -----------------------------------------------------------


def test_module_name_for_path():
    assert module_name_for_path("src/repro/mis/luby.py") == "repro.mis.luby"
    assert module_name_for_path("src/repro/mis/__init__.py") == "repro.mis"
    assert module_name_for_path("/a/b/standalone.py") == "standalone"


def test_iter_python_files_excludes(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "skipme.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    files = iter_python_files(
        [str(tmp_path)], exclude=[str(tmp_path / "pkg" / "skipme.py")]
    )
    assert [f.split("/")[-1] for f in files] == ["good.py"]
