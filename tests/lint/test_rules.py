"""Each lint rule fires on a minimal violating fixture, with precise
file:line locations, and stays quiet on the compliant twin."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.config import LintConfig

# Determinism scope "*" puts synthetic fixture modules in R3 scope.
CFG = LintConfig(determinism_packages=("*",))

HEADER = "from repro.congest.algorithm import NodeAlgorithm, NodeContext\n"


def findings_for(body: str, config: LintConfig = CFG):
    return lint_source(
        HEADER + textwrap.dedent(body), path="fixture.py", config=config
    )


def rules_of(findings):
    return [f.rule for f in findings]


# -- R1 statelessness --------------------------------------------------------


def test_r1_flags_self_write_in_on_round():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                self.counter = 1
        """
    )
    assert rules_of(findings) == ["R1"]
    # HEADER is line 1 and the dedented body keeps its leading blank
    # line, so `self.counter = 1` lands on line 5.
    assert findings[0].line == 5
    assert findings[0].path == "fixture.py"


def test_r1_flags_augmented_and_subscript_writes():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_start(self, ctx):
                self.total += 1
                self.cache[ctx.node] = 1
            def on_halt(self, ctx):
                del self.cache
        """
    )
    assert rules_of(findings) == ["R1", "R1", "R1"]


def test_r1_allows_init_and_ctx_state():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def __init__(self, plan):
                self.plan = plan
            def on_round(self, ctx, inbox):
                ctx.state["seen"] = len(inbox)
                ctx.state["count"] += 1
        """
    )
    assert findings == []


def test_r1_applies_to_phased_hook_methods():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def competition_key(self, ctx, iteration):
                self.last_key = iteration
                return (iteration, ctx.node)
        """
    )
    assert rules_of(findings) == ["R1"]


# -- R2 locality -------------------------------------------------------------


def test_r2_flags_private_context_access():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx._outbox.clear()
        """
    )
    assert rules_of(findings) == ["R2"]
    assert "ctx._outbox" in findings[0].message


def test_r2_flags_nonpublic_surface():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.simulator_backdoor()
        """
    )
    assert rules_of(findings) == ["R2"]


def test_r2_public_surface_is_quiet():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round_index > ctx.n or ctx.halted:
                    ctx.halt(("done", ctx.node, ctx.seed))
                for u in ctx.neighbors:
                    ctx.send(u, ctx.degree())
                ctx.broadcast(ctx.state.get("x"))
        """
    )
    assert findings == []


def test_r2_flags_simulator_reference_inside_node_method():
    findings = findings_for(
        """
        from repro.congest.simulator import SynchronousSimulator

        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                return SynchronousSimulator
        """
    )
    assert rules_of(findings) == ["R2"]


def test_r2_allows_module_level_simulator_driver():
    # Algorithm modules legitimately contain driver functions that run
    # the simulator *outside* the node program.
    findings = findings_for(
        """
        from repro.congest.simulator import SynchronousSimulator

        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(None)

        def drive(network):
            return SynchronousSimulator(network).run(P())
        """
    )
    assert findings == []


def test_r2_flags_private_congest_import():
    findings = findings_for(
        """
        from repro.congest.simulator import _secret_hook

        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(None)
        """
    )
    assert any(f.rule == "R2" and "_secret_hook" in f.message for f in findings)


# -- R3 determinism ----------------------------------------------------------


def test_r3_flags_ambient_rng_and_clock_imports():
    findings = findings_for(
        """
        import random
        import time
        from datetime import datetime
        """
    )
    assert rules_of(findings) == ["R3", "R3", "R3"]


def test_r3_flags_numpy_module_rng():
    findings = findings_for(
        """
        import numpy as np

        def draw():
            return np.random.default_rng().random()
        """
    )
    assert any(f.rule == "R3" and "default_rng" in f.message for f in findings)


def test_r3_allows_keyed_generators_and_scoping():
    source = """
        import numpy as np

        def stream(key):
            return np.random.Generator(np.random.Philox(key=key))
        """
    assert findings_for(source) == []
    # Out of the configured package scope nothing fires at all.
    out_of_scope = LintConfig(determinism_packages=("repro.mis",))
    assert (
        lint_source(
            HEADER + textwrap.dedent("import random\n"),
            path="fixture.py",
            config=out_of_scope,
            module_name="somewhere.else",
        )
        == []
    )


# -- R4 bandwidth ------------------------------------------------------------


def test_r4_flags_bytes_payload():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(0, b"raw")
        """
    )
    assert rules_of(findings) == ["R4"]


def test_r4_flags_neighbor_collection_payloads():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.broadcast(tuple(ctx.neighbors))
                ctx.send(0, ("ids", *ctx.neighbors))
                ctx.send(1, [u for u in ctx.neighbors])
                ctx.send(2, list(range(ctx.n)))
        """
    )
    assert rules_of(findings) == ["R4", "R4", "R4", "R4"]


def test_r4_allows_scalar_payloads():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(0, ("key", ctx.node, len(ctx.neighbors)))
                ctx.broadcast(("deg", ctx.degree(), ctx.n))
                ctx.send(1, payload=("flag", True, 3.5, None))
        """
    )
    assert findings == []


def test_r4_flags_uncodable_constructors():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(0, ("blob", bytearray(8)))
        """
    )
    assert rules_of(findings) == ["R4"]


# -- R5 shared mutable defaults ---------------------------------------------


def test_r5_flags_mutable_class_attribute_and_default_arg():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            cache = {}

            def on_round(self, ctx, inbox, extras=[]):
                ctx.halt(None)
        """
    )
    assert rules_of(findings) == ["R5", "R5"]


def test_r5_allows_immutable_class_attributes():
    findings = findings_for(
        """
        class P(NodeAlgorithm):
            name = "fixture"
            LIMIT = 3
            TAGS = ("a", "b")

            def on_round(self, ctx, inbox, scale=2, label="x"):
                ctx.halt(None)
        """
    )
    assert findings == []


def test_rules_ignore_non_algorithm_classes():
    findings = findings_for(
        """
        class Helper:
            cache = {}

            def on_round(self, ctx, inbox):
                self.count = 1
                return ctx._outbox
        """
    )
    assert findings == []


def test_transitive_subclass_discovery():
    findings = findings_for(
        """
        class Base(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(None)

        class Derived(Base):
            def on_round(self, ctx, inbox):
                self.cheat = True
        """
    )
    assert rules_of(findings) == ["R1"]
    assert "Derived" in findings[0].message
