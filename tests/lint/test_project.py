"""The project model: symbol table, call graph, pool-target discovery,
and the interprocedural behavior of R2/R3 built on top of it."""

from __future__ import annotations

import textwrap

from repro.lint.config import LintConfig
from repro.lint.engine import build_model, lint_paths
from repro.lint.project import build_project


def models_for(sources, config=None):
    config = config or LintConfig()
    out = []
    for module_name, source in sources.items():
        path = module_name.replace(".", "/") + ".py"
        out.append(
            build_model(
                textwrap.dedent(source), path, config, module_name=module_name
            )
        )
    return out


# -- symbol table ------------------------------------------------------------


def test_symbol_table_covers_functions_and_methods():
    project = build_project(
        models_for(
            {
                "pkg.mod": """
                def helper():
                    return 1

                class Engine:
                    def run(self):
                        return helper()
                """
            }
        )
    )
    assert set(project.functions) == {"pkg.mod.helper", "pkg.mod.Engine.run"}
    assert project.functions["pkg.mod.Engine.run"].owner == "Engine"


def test_call_graph_resolves_names_aliases_and_self():
    project = build_project(
        models_for(
            {
                "pkg.util": """
                def leaf():
                    return 0
                """,
                "pkg.mod": """
                import pkg.util as util
                from pkg.util import leaf

                def by_name():
                    return leaf()

                def by_alias():
                    return util.leaf()

                class Engine:
                    def step(self):
                        return self.by_self()

                    def by_self(self):
                        return by_name()
                """,
            }
        )
    )
    assert project.call_graph["pkg.mod.by_name"] == {"pkg.util.leaf"}
    assert project.call_graph["pkg.mod.by_alias"] == {"pkg.util.leaf"}
    assert project.call_graph["pkg.mod.Engine.step"] == {
        "pkg.mod.Engine.by_self"
    }
    # Transitive closure crosses the module boundary.
    assert project.callees("pkg.mod.Engine.step", transitive=True) == {
        "pkg.mod.Engine.by_self",
        "pkg.mod.by_name",
        "pkg.util.leaf",
    }


# -- pool targets ------------------------------------------------------------


def test_worker_reachable_closes_over_the_call_graph():
    project = build_project(
        models_for(
            {
                "pkg.mod": """
                def task(x):
                    return inner(x)

                def inner(x):
                    return x + 1

                def init():
                    return None

                def host(pool, executor_cls):
                    pool.submit(task, 1)

                def make(Process, ProcessPoolExecutor):
                    Process(target=task, args=(1,))
                    ProcessPoolExecutor(initializer=init)
                """
            }
        )
    )
    assert project.pool_targets == {"pkg.mod.task", "pkg.mod.init"}
    assert project.worker_reachable == {
        "pkg.mod.task",
        "pkg.mod.inner",
        "pkg.mod.init",
    }
    task_def = project.functions["pkg.mod.task"].node
    host_def = project.functions["pkg.mod.host"].node
    assert project.is_worker_code(task_def)
    assert not project.is_worker_code(host_def)


# -- event schema ------------------------------------------------------------


def test_event_schema_collected_from_models():
    project = build_project(
        models_for(
            {
                "pkg.events": """
                EVENT_PING = "ping"
                EVENT_PONG = "pong"
                NOT_AN_EVENT = 3
                """
            }
        )
    )
    assert project.event_kinds == {"ping", "pong"}
    assert project.event_constants["EVENT_PING"] == "ping"


def test_event_schema_falls_back_to_in_tree_obs():
    # A project without its own EVENT_* constants still knows the real
    # schema (static parse of repro/obs/events.py).
    project = build_project(models_for({"pkg.mod": "x = 1\n"}))
    assert "mpc-round" in project.event_kinds
    assert project.event_constants["EVENT_MPC_ROUND"] == "mpc-round"


# -- ambient-state taint (interprocedural R3) --------------------------------


def test_taint_propagates_backwards_but_not_through_exempt_modules():
    config = LintConfig(
        determinism_packages=("pkg.algo",),
        clock_exempt_packages=("pkg.sanctioned",),
        safety_packages=(),
    )
    project = build_project(
        models_for(
            {
                "pkg.helpers": """
                import time

                def now():
                    return time.time()

                def via():
                    return now()
                """,
                "pkg.sanctioned": """
                import time

                def stamp():
                    return time.time()
                """,
            },
            config,
        )
    )
    tainted = project.tainted_functions(config)
    assert "pkg.helpers.now" in tainted
    assert "pkg.helpers.via" in tainted  # backward closure
    assert "pkg.sanctioned.stamp" not in tainted  # clocks by design


def test_interprocedural_r3_flags_cross_module_clock_use(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "helpers.py").write_text(
        textwrap.dedent(
            """
            import time

            def jitter():
                return time.time() % 1.0
            """
        )
    )
    (pkg / "algo.py").write_text(
        textwrap.dedent(
            """
            from pkg.helpers import jitter

            def compute(seed):
                return seed + jitter()
            """
        )
    )
    config = LintConfig(
        determinism_packages=("pkg.algo",),
        clock_exempt_packages=(),
        safety_packages=(),
        paths=(str(tmp_path),),
    )
    # module_name_for_path has no "repro" anchor here, so patch names by
    # linting through build_model + build_project directly.
    models = [
        build_model(
            (pkg / "helpers.py").read_text(),
            str(pkg / "helpers.py"),
            config,
            module_name="pkg.helpers",
        ),
        build_model(
            (pkg / "algo.py").read_text(),
            str(pkg / "algo.py"),
            config,
            module_name="pkg.algo",
        ),
    ]
    from repro.lint.engine import _run_rules

    project = build_project(models)
    findings = []
    for model in models:
        findings.extend(_run_rules(model, config, project))
    r3 = [f for f in findings if f.rule == "R3"]
    assert len(r3) == 1
    assert r3[0].path.endswith("algo.py")
    assert "pkg.helpers.jitter" in r3[0].message


def test_interprocedural_r2_follows_ctx_into_helpers(tmp_path):
    config = LintConfig(
        determinism_packages=(),
        safety_packages=(),
    )
    models = models_for(
        {
            "pkg.helpers": """
            def poke(ctx):
                return ctx._outbox
            """,
            "pkg.algo": """
            from repro.congest.algorithm import NodeAlgorithm
            from pkg.helpers import poke

            class P(NodeAlgorithm):
                def on_round(self, ctx, inbox):
                    return poke(ctx)
            """,
        },
        config,
    )
    from repro.lint.engine import _run_rules

    project = build_project(models)
    findings = []
    for model in models:
        findings.extend(_run_rules(model, config, project))
    r2 = [f for f in findings if f.rule == "R2"]
    assert len(r2) == 1
    # Reported at the call site in the node program, naming the helper.
    assert r2[0].path.endswith("algo.py")
    assert "pkg.helpers.poke" in r2[0].message
    assert "_outbox" in r2[0].message


def test_lint_paths_builds_one_project_across_files(tmp_path):
    # End-to-end two-pass run over real files: a worker write in module A
    # is only detectable because the pool dispatch lives in module B.
    repro_dir = tmp_path / "repro" / "mpc"
    repro_dir.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (repro_dir / "__init__.py").write_text("")
    (repro_dir / "work.py").write_text(
        textwrap.dedent(
            """
            import numpy as np

            def task(shm, n):
                arr = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
                arr.flags.writeable = False
                arr[0] = 1
            """
        )
    )
    (repro_dir / "host.py").write_text(
        textwrap.dedent(
            """
            from repro.mpc.work import task

            def kick(pool, shm, n):
                pool.submit(task, shm, n)
            """
        )
    )
    config = LintConfig(determinism_packages=())
    findings = lint_paths([str(tmp_path)], config=config)
    s1 = [f for f in findings if f.rule == "S1"]
    assert len(s1) == 1
    assert s1[0].path.endswith("work.py")
    assert "worker" in s1[0].message
