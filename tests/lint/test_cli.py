"""CLI behavior: exit codes, JSON output, and the ``repro lint`` alias."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

CLEAN = """
from repro.congest.algorithm import NodeAlgorithm


class Fine(NodeAlgorithm):
    name = "fine"

    def on_round(self, ctx, inbox):
        ctx.halt(("done", ctx.node))
"""

VIOLATING = """
from repro.congest.algorithm import NodeAlgorithm


class Cheater(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        self.total = len(inbox)
        ctx.broadcast(tuple(ctx.neighbors))
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "fine.py"
    path.write_text(textwrap.dedent(CLEAN))
    return str(path)


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "cheater.py"
    path.write_text(textwrap.dedent(VIOLATING))
    return str(path)


def test_exit_zero_on_clean_tree(clean_file, capsys):
    assert lint_main([clean_file, "--no-config"]) == 0
    out = capsys.readouterr().out
    assert "model-compliant" in out


def test_exit_one_with_precise_findings(violating_file, capsys):
    assert lint_main([violating_file, "--no-config"]) == 1
    out = capsys.readouterr().out
    # file:line:col precision for both injected violations
    assert f"{violating_file}:7:8: R1" in out
    assert f"{violating_file}:8:22: R4" in out


def test_exit_two_on_syntax_error(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert lint_main([str(path), "--no-config"]) == 2
    assert "E1" in capsys.readouterr().out


def test_exit_two_on_empty_target(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    assert lint_main([str(tmp_path / "empty"), "--no-config"]) == 2


def test_json_report_shape(violating_file, capsys):
    assert lint_main([violating_file, "--no-config", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["checked_files"] == 1
    assert report["total"] == 2
    assert report["counts"] == {"R1": 1, "R4": 1}
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"R1", "R4"}
    for finding in report["findings"]:
        assert finding["path"] == violating_file
        assert finding["line"] > 0


def test_config_file_flag(tmp_path, violating_file, capsys):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.repro.lint]\ndisable = [\"R1\", \"R4\"]\n"
    )
    assert (
        lint_main([violating_file, "--config", str(pyproject)]) == 0
    )
    capsys.readouterr()


def test_repro_cli_lint_subcommand(violating_file, capsys):
    assert repro_main(["lint", violating_file, "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "R4" in out


def test_repro_cli_lint_json(clean_file, capsys):
    assert repro_main(["lint", clean_file, "--no-config", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 0


# -- rule selection (--select / --disable) -----------------------------------


def test_select_runs_only_listed_rules(violating_file, capsys):
    assert lint_main([violating_file, "--no-config", "--select", "R1"]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "R4" not in out


def test_select_can_exit_zero(violating_file, capsys):
    # Selecting a rule the file does not violate passes.
    assert lint_main([violating_file, "--no-config", "--select", "R5"]) == 0
    capsys.readouterr()


def test_disable_skips_listed_rules(violating_file, capsys):
    assert (
        lint_main([violating_file, "--no-config", "--disable", "R1,R4"]) == 0
    )
    capsys.readouterr()


def test_select_is_repeatable_and_comma_separated(violating_file, capsys):
    assert (
        lint_main(
            [violating_file, "--no-config", "--select", "R1", "--select", "R4"]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "R1" in out and "R4" in out


def test_repro_cli_passes_select_through(violating_file, capsys):
    assert (
        repro_main(["lint", violating_file, "--no-config", "--select", "R4"])
        == 1
    )
    out = capsys.readouterr().out
    assert "R4" in out and "R1" not in out


# -- multi-rule suppression lists --------------------------------------------


def test_multi_rule_lint_ignore_list(tmp_path, capsys):
    path = tmp_path / "multi.py"
    path.write_text(
        textwrap.dedent(
            """
            from repro.congest.algorithm import NodeAlgorithm


            class Multi(NodeAlgorithm):
                def on_round(self, ctx, inbox):
                    self.total = ctx._outbox  # repro: lint-ignore[R1, R2]
            """
        )
    )
    assert lint_main([str(path), "--no-config"]) == 0
    capsys.readouterr()


def test_multi_rule_lint_ignore_partial_list_still_fails(tmp_path, capsys):
    path = tmp_path / "partial.py"
    path.write_text(
        textwrap.dedent(
            """
            from repro.congest.algorithm import NodeAlgorithm


            class Multi(NodeAlgorithm):
                def on_round(self, ctx, inbox):
                    self.total = ctx._outbox  # repro: lint-ignore[R1,R5]
            """
        )
    )
    assert lint_main([str(path), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "R2" in out and "R1" not in out


# -- baseline workflow (exit-code contract) ----------------------------------


def test_write_then_apply_baseline_round_trip(violating_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(
            [violating_file, "--no-config", "--write-baseline", str(baseline)]
        )
        == 0
    )
    capsys.readouterr()
    # Grandfathered findings no longer fail the run ...
    assert (
        lint_main([violating_file, "--no-config", "--baseline", str(baseline)])
        == 0
    )
    out = capsys.readouterr().out
    assert "2 baseline-suppressed findings" in out


def test_new_finding_fails_despite_baseline(
    violating_file, tmp_path, capsys
):
    baseline = tmp_path / "baseline.json"
    lint_main(
        [violating_file, "--no-config", "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    # A *new* violation in a second file is not grandfathered.
    extra = tmp_path / "extra.py"
    extra.write_text(
        textwrap.dedent(
            """
            from repro.congest.algorithm import NodeAlgorithm


            class New(NodeAlgorithm):
                def on_round(self, ctx, inbox):
                    self.fresh = 1
            """
        )
    )
    assert (
        lint_main(
            [
                violating_file,
                str(extra),
                "--no-config",
                "--baseline",
                str(baseline),
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "extra.py" in out


def test_stale_baseline_reported_and_strict_fails(
    clean_file, violating_file, tmp_path, capsys
):
    baseline = tmp_path / "baseline.json"
    lint_main(
        [violating_file, "--no-config", "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    # Linting only the clean file leaves every baseline entry unmatched.
    assert (
        lint_main([clean_file, "--no-config", "--baseline", str(baseline)])
        == 0
    )
    out = capsys.readouterr().out
    assert "stale baseline entry" in out
    assert (
        lint_main(
            [
                clean_file,
                "--no-config",
                "--baseline",
                str(baseline),
                "--strict-baseline",
            ]
        )
        == 1
    )
    capsys.readouterr()


def test_baseline_never_hides_parse_errors(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    baseline = tmp_path / "baseline.json"
    lint_main([str(broken), "--no-config", "--write-baseline", str(baseline)])
    capsys.readouterr()
    # E1 is unbaselinable: exit stays 2 even with the fresh baseline.
    assert (
        lint_main([str(broken), "--no-config", "--baseline", str(baseline)])
        == 2
    )
    capsys.readouterr()


def test_unreadable_baseline_exits_two(violating_file, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert (
        lint_main([violating_file, "--no-config", "--baseline", str(bad)]) == 2
    )
    assert "baseline" in capsys.readouterr().err


def test_json_report_carries_baseline_sections(
    violating_file, tmp_path, capsys
):
    baseline = tmp_path / "baseline.json"
    lint_main(
        [violating_file, "--no-config", "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    assert (
        lint_main(
            [
                violating_file,
                "--no-config",
                "--baseline",
                str(baseline),
                "--format",
                "json",
            ]
        )
        == 0
    )
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 0
    assert len(report["baseline_suppressed"]) == 2
    assert report["stale_baseline"] == []


# -- SARIF output ------------------------------------------------------------


def test_sarif_output_is_valid_and_complete(violating_file, capsys):
    assert (
        lint_main([violating_file, "--no-config", "--format", "sarif"]) == 1
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"R1", "R4", "S1", "S3"} <= rule_ids
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"R1", "R4"}
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("cheater.py")
        assert location["region"]["startLine"] > 0
        assert location["region"]["startColumn"] > 0
        assert result["level"] in ("error", "warning")


def test_sarif_includes_baselined_findings(violating_file, tmp_path, capsys):
    # SARIF is for code-scanning UIs: grandfathered findings still appear
    # there (the exit code, not the report, encodes the baseline).
    baseline = tmp_path / "baseline.json"
    lint_main(
        [violating_file, "--no-config", "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    assert (
        lint_main(
            [
                violating_file,
                "--no-config",
                "--baseline",
                str(baseline),
                "--format",
                "sarif",
            ]
        )
        == 0
    )
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["runs"][0]["results"]) == 2
