"""CLI behavior: exit codes, JSON output, and the ``repro lint`` alias."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

CLEAN = """
from repro.congest.algorithm import NodeAlgorithm


class Fine(NodeAlgorithm):
    name = "fine"

    def on_round(self, ctx, inbox):
        ctx.halt(("done", ctx.node))
"""

VIOLATING = """
from repro.congest.algorithm import NodeAlgorithm


class Cheater(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        self.total = len(inbox)
        ctx.broadcast(tuple(ctx.neighbors))
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "fine.py"
    path.write_text(textwrap.dedent(CLEAN))
    return str(path)


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "cheater.py"
    path.write_text(textwrap.dedent(VIOLATING))
    return str(path)


def test_exit_zero_on_clean_tree(clean_file, capsys):
    assert lint_main([clean_file, "--no-config"]) == 0
    out = capsys.readouterr().out
    assert "model-compliant" in out


def test_exit_one_with_precise_findings(violating_file, capsys):
    assert lint_main([violating_file, "--no-config"]) == 1
    out = capsys.readouterr().out
    # file:line:col precision for both injected violations
    assert f"{violating_file}:7:8: R1" in out
    assert f"{violating_file}:8:22: R4" in out


def test_exit_two_on_syntax_error(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert lint_main([str(path), "--no-config"]) == 2
    assert "E1" in capsys.readouterr().out


def test_exit_two_on_empty_target(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    assert lint_main([str(tmp_path / "empty"), "--no-config"]) == 2


def test_json_report_shape(violating_file, capsys):
    assert lint_main([violating_file, "--no-config", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["checked_files"] == 1
    assert report["total"] == 2
    assert report["counts"] == {"R1": 1, "R4": 1}
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"R1", "R4"}
    for finding in report["findings"]:
        assert finding["path"] == violating_file
        assert finding["line"] > 0


def test_config_file_flag(tmp_path, violating_file, capsys):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.repro.lint]\ndisable = [\"R1\", \"R4\"]\n"
    )
    assert (
        lint_main([violating_file, "--config", str(pyproject)]) == 0
    )
    capsys.readouterr()


def test_repro_cli_lint_subcommand(violating_file, capsys):
    assert repro_main(["lint", violating_file, "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "R1" in out and "R4" in out


def test_repro_cli_lint_json(clean_file, capsys):
    assert repro_main(["lint", clean_file, "--no-config", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 0
