"""Each S-family rule fires on a minimal violating fixture, with precise
locations, and stays quiet on the compliant twin (mirrors test_rules.py
for the R-family)."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source
from repro.lint.config import LintConfig

# Safety scope "*" puts synthetic fixture modules in S-rule scope.
CFG = LintConfig(safety_packages=("*",))


def findings_for(body: str, config: LintConfig = CFG, path: str = "fixture.py"):
    return lint_source(textwrap.dedent(body), path=path, config=config)


def rules_of(findings):
    return [f.rule for f in findings]


# -- S1 shared-memory write safety -------------------------------------------


def test_s1_flags_unfrozen_buffer_attachment():
    findings = findings_for(
        """
        import numpy as np

        def attach(shm, n):
            arr = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
            return arr
        """
    )
    assert rules_of(findings) == ["S1"]
    assert "writeable" in findings[0].message
    assert findings[0].severity == "error"


def test_s1_quiet_when_attachment_is_frozen():
    findings = findings_for(
        """
        import numpy as np

        def attach(shm, data, n):
            arr = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
            arr[:] = data  # fill before freezing is fine
            arr.flags.writeable = False
            return arr
        """
    )
    assert findings == []


def test_s1_flags_unbound_inline_attachment():
    findings = findings_for(
        """
        import numpy as np

        def peek(shm, n):
            return np.ndarray((n,), dtype=np.int64, buffer=shm.buf).sum()
        """
    )
    assert rules_of(findings) == ["S1"]


def test_s1_flags_worker_write_to_attached_array():
    findings = findings_for(
        """
        import numpy as np

        def worker(shm, n):
            arr = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
            arr.flags.writeable = False
            arr[0] = 1

        def coordinator(pool, shm, n):
            pool.submit(worker, shm, n)
        """
    )
    assert rules_of(findings) == ["S1"]
    assert "worker" in findings[0].message


def test_s1_flags_worker_write_to_static_csr_attribute():
    findings = findings_for(
        """
        def worker(static, i):
            static.indptr[i] = 0

        def coordinator(pool, static):
            pool.submit(worker, static, 3)
        """
    )
    assert rules_of(findings) == ["S1"]
    assert ".indptr" in findings[0].message


def test_s1_allows_nonworker_write_to_attribute():
    # Only *worker-reachable* code is held to the read-only contract.
    findings = findings_for(
        """
        def builder(static, i):
            static.indptr[i] = 0
        """
    )
    assert findings == []


# -- S2 fork/pool safety -----------------------------------------------------


def test_s2_flags_module_level_live_resources():
    findings = findings_for(
        """
        import threading

        LOCK = threading.Lock()
        LOG = open("log.txt", "a")
        """
    )
    assert rules_of(findings) == ["S2", "S2"]


def test_s2_flags_mutable_global_crossing_pool_boundary():
    findings = findings_for(
        """
        CACHE = {}

        def worker(x):
            CACHE[x] = x * 2

        def coordinator(pool, xs):
            for x in xs:
                pool.submit(worker, x)
            return CACHE
        """
    )
    assert rules_of(findings) == ["S2"]
    assert "CACHE" in findings[0].message


def test_s2_allows_worker_only_global():
    # The _WORKER pattern: initialized and read on the worker side only.
    findings = findings_for(
        """
        _WORKER = {}

        def _init(run_id):
            _WORKER["run_id"] = run_id

        def _task(x):
            return _WORKER["run_id"], x

        def coordinator(pool):
            pool.submit(_task, 1)

        def make_pool():
            from concurrent.futures import ProcessPoolExecutor

            return ProcessPoolExecutor(initializer=_init, initargs=("run",))
        """
    )
    assert findings == []


def test_s2_allows_constant_module_dict():
    findings = findings_for(
        """
        WIRE_DTYPES = {"active": "uint8"}

        def worker(key):
            return WIRE_DTYPES[key]

        def coordinator(pool):
            pool.submit(worker, "active")
        """
    )
    assert findings == []


def test_s2_flags_live_object_in_pool_args():
    findings = findings_for(
        """
        class Runtime:
            def kick(self, pool, shard):
                pool.submit(work, self.obs, shard)

        def work(obs, shard):
            return shard
        """
    )
    assert rules_of(findings) == ["S2"]
    assert ".obs" in findings[0].message


def test_s2_flags_open_call_in_process_args():
    findings = findings_for(
        """
        def spawn(Process):
            p = Process(target=work, args=(open("f.txt"),))
            return p

        def work(handle):
            return handle
        """
    )
    assert rules_of(findings) == ["S2"]


# -- S3 dtype/overflow safety ------------------------------------------------


def test_s3_flags_mixed_width_arithmetic():
    findings = findings_for(
        """
        import numpy as np

        def combine(n):
            small = np.zeros(n, dtype=np.int32)
            big = np.zeros(n, dtype=np.int64)
            return small + big
        """
    )
    assert rules_of(findings) == ["S3"]
    assert "int32" in findings[0].message and "int64" in findings[0].message


def test_s3_flags_narrow_index_array():
    findings = findings_for(
        """
        import numpy as np

        def gather(values, n):
            idx = np.arange(n, dtype=np.int32)
            return values[idx]
        """
    )
    assert rules_of(findings) == ["S3"]
    assert "int64" in findings[0].message


def test_s3_flags_downcast_as_warning():
    findings = findings_for(
        """
        import numpy as np

        def narrow(n):
            wide = np.zeros(n, dtype=np.int64)
            return wide.astype(np.int8)
        """
    )
    assert rules_of(findings) == ["S3"]
    assert findings[0].severity == "warning"


def test_s3_quiet_on_widening_and_same_width():
    findings = findings_for(
        """
        import numpy as np

        def widen(n):
            a = np.zeros(n, dtype=np.int32)
            b = np.zeros(n, dtype=np.int32)
            c = a + b
            wide = a.astype(np.int64)
            u = wide.astype(np.uint64)  # sign-only change, same width
            idx = np.arange(n, dtype=np.int64)
            return c, u, wide[idx]
        """
    )
    assert findings == []


def test_s3_suppressible_with_lint_ignore():
    findings = findings_for(
        """
        import numpy as np

        def narrow(n):
            wide = np.zeros(n, dtype=np.int64)
            return wide.astype(np.int8)  # repro: lint-ignore[S3]
        """
    )
    assert findings == []


# -- S4 RNG boundary discipline ----------------------------------------------


def test_s4_flags_generator_in_pool_args():
    findings = findings_for(
        """
        import numpy as np

        def dispatch(pool):
            rng = np.random.default_rng(7)
            pool.submit(work, rng)

        def work(rng):
            return rng.random()
        """
    )
    assert rules_of(findings) == ["S4"]
    assert "seed" in findings[0].message


def test_s4_flags_inline_generator_in_process_args():
    findings = findings_for(
        """
        import numpy as np

        def dispatch(Process):
            return Process(target=work, args=(np.random.Philox(3),))

        def work(bitgen):
            return bitgen
        """
    )
    assert rules_of(findings) == ["S4"]


def test_s4_flags_pickled_rng_state():
    findings = findings_for(
        """
        import pickle
        import numpy as np

        def snapshot():
            rng = np.random.default_rng(7)
            return pickle.dumps(rng)
        """
    )
    assert rules_of(findings) == ["S4"]


def test_s4_allows_integer_seeds_across_pool():
    findings = findings_for(
        """
        def dispatch(pool, seed, salt):
            pool.submit(work, seed, salt)

        def work(seed, salt):
            return seed ^ salt
        """
    )
    assert findings == []


# -- S5 obs-event taxonomy ---------------------------------------------------


def test_s5_flags_unknown_event_kind_literal():
    findings = findings_for(
        """
        from repro.obs.session import ObsSession

        def run(obs):
            obs.emit("mpc-roud", shard=1)
        """
    )
    assert rules_of(findings) == ["S5"]
    assert "mpc-roud" in findings[0].message


def test_s5_quiet_on_known_kind_and_nonliteral():
    findings = findings_for(
        """
        from repro.obs.session import ObsSession
        from repro.obs.events import EVENT_MPC_ROUND

        def run(obs, sink, event):
            obs.emit("mpc-round", shard=1)
            obs.emit(EVENT_MPC_ROUND, shard=2)
            sink.emit(event)  # forwarding a built event: not a kind
        """
    )
    assert findings == []


def test_s5_flags_unknown_event_constant():
    findings = findings_for(
        """
        from repro.obs.session import ObsSession

        def run(obs):
            obs.emit(EVENT_NOT_A_THING)
        """
    )
    assert rules_of(findings) == ["S5"]


def test_s5_skips_modules_not_importing_obs():
    findings = findings_for(
        """
        def run(bus):
            bus.emit("mpc-roud")
        """
    )
    assert findings == []


def test_s5_flags_unknown_span_name_literal():
    findings = findings_for(
        """
        from repro.obs.trace import Tracer

        def run(tracer):
            s = tracer.begin("congest:roudn")
            tracer.end(s)
            with tracer.span("made-up"):
                pass
        """
    )
    assert rules_of(findings) == ["S5", "S5"]
    assert "congest:roudn" in findings[0].message
    assert "made-up" in findings[1].message


def test_s5_quiet_on_taxonomy_spans_and_nonliterals():
    findings = findings_for(
        """
        from repro.obs.trace import SPAN_CONGEST_ROUND, Tracer

        def run(tracer, name, match):
            s = tracer.begin("congest:round")
            tracer.end(s)
            with tracer.span(SPAN_CONGEST_ROUND):
                pass
            tracer.begin(name)  # dynamic: conservatively unflagged
            match.span(0)  # regex Match.span(group): not a tracer call
        """
    )
    assert findings == []


def test_s5_flags_unknown_span_constant():
    findings = findings_for(
        """
        from repro.obs.trace import Tracer

        def run(tracer):
            tracer.begin(SPAN_NOT_A_THING)
        """
    )
    assert rules_of(findings) == ["S5"]


# -- scoping -----------------------------------------------------------------


def test_safety_rules_respect_package_scope():
    # Outside safety-packages, S1-S4 do not fire at all.
    source = """
        import numpy as np

        def attach(shm, n):
            return np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
        """
    scoped = LintConfig(safety_packages=("repro.mpc",))
    assert (
        lint_source(
            textwrap.dedent(source),
            path="x.py",
            config=scoped,
            module_name="repro.congest.simulator",
        )
        == []
    )
    assert rules_of(
        lint_source(
            textwrap.dedent(source),
            path="x.py",
            config=scoped,
            module_name="repro.mpc.runtime",
        )
    ) == ["S1"]


def test_severity_survives_to_dict():
    findings = findings_for(
        """
        import numpy as np

        def narrow(n):
            wide = np.zeros(n, dtype=np.int64)
            return wide.astype(np.int16)
        """
    )
    assert [f.to_dict()["severity"] for f in findings] == ["warning"]
