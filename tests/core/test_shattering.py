"""Tests for the shattering analysis (Theorem 3.6 / Lemma 3.7)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.shattering import analyze_bad_components, lemma_3_7_component_bound
from repro.graphs.generators import bounded_arboricity_graph


class TestLemmaBound:
    def test_formula(self):
        import math

        bound = lemma_3_7_component_bound(10, 1000, c=1.0)
        assert bound == pytest.approx(10**6 * math.log(1000) / math.log(10))

    def test_grows_with_delta(self):
        assert lemma_3_7_component_bound(20, 1000) > lemma_3_7_component_bound(5, 1000)

    def test_c_scales_linearly(self):
        assert lemma_3_7_component_bound(10, 100, c=2.0) == pytest.approx(
            2 * lemma_3_7_component_bound(10, 100, c=1.0)
        )


class TestAnalyzeBadComponents:
    def test_empty_bad_set(self, arb3_graph):
        report = analyze_bad_components(arb3_graph, set())
        assert report.bad_count == 0
        assert report.component_count == 0
        assert report.largest_component == 0
        assert report.within_bound

    def test_counts_components(self, path5):
        # Bad = {0, 1, 3}: components {0,1} and {3}.
        report = analyze_bad_components(path5, {0, 1, 3})
        assert report.bad_count == 3
        assert sorted(report.component_sizes) == [1, 2]
        assert report.largest_component == 2

    def test_bad_fraction(self, path5):
        report = analyze_bad_components(path5, {0})
        assert report.bad_fraction == pytest.approx(0.2)

    def test_summary_readable(self, path5):
        report = analyze_bad_components(path5, {0, 1})
        text = report.summary()
        assert "|B|=2/5" in text
        assert "largest=2" in text

    def test_real_run_shatters(self):
        # On a real run of the algorithm, B should be small and shattered.
        from repro.core.bounded_arb import bounded_arb_independent_set
        from repro.graphs.generators import starry_arboricity_graph

        g = starry_arboricity_graph(500, 2, hubs=5, seed=2)
        result = bounded_arb_independent_set(g, alpha=2, seed=2)
        report = analyze_bad_components(g, result.bad_set)
        assert report.bad_fraction < 0.2
        assert report.within_bound  # the lemma bound is enormous; must hold
