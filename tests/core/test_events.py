"""Tests for the Events (1)-(3) simulators and bounds (Theorems 3.1-3.3)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.events import (
    event1_bound,
    event2_bound,
    event3_bound,
    simulate_event1,
    simulate_event2,
    simulate_event3,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import bounded_arboricity_graph
from repro.graphs.orientation import peeling_orientation


@pytest.fixture(scope="module")
def oriented_arb_graph():
    g = bounded_arboricity_graph(150, 2, seed=3)
    return g, peeling_orientation(g)


class TestBounds:
    def test_event1_bound_increases_with_m(self):
        assert event1_bound(100, 10, 2) > event1_bound(10, 10, 2)

    def test_event1_bound_decreases_with_alpha(self):
        assert event1_bound(50, 10, 4) < event1_bound(50, 10, 2)

    def test_event1_bound_edge_cases(self):
        assert event1_bound(0, 10, 2) == 0.0
        assert event1_bound(10, 0, 2) == 0.0

    def test_event2_event3_bounds_near_one(self):
        assert event2_bound(10) == 1 - 1e-4
        assert event3_bound(10) == 1 - 1e-3

    def test_bounds_are_probabilities(self):
        assert 0 <= event1_bound(30, 5, 2) <= 1
        assert 0 <= event2_bound(3) <= 1
        assert 0 <= event3_bound(3) <= 1


class TestSimulateEvent1:
    def test_bound_holds(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        # M = competitive nodes with at least one child.
        m = [v for v in g.nodes() if orientation.children(v)][:40]
        estimate = simulate_event1(g, orientation, m, alpha=2, rho=1e9, trials=600, seed=1)
        assert estimate.bound_holds

    def test_empty_m_rejected(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        with pytest.raises(ConfigurationError):
            simulate_event1(g, orientation, [], alpha=2, rho=10)

    def test_larger_m_raises_empirical(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        with_children = [v for v in g.nodes() if orientation.children(v)]
        small = simulate_event1(g, orientation, with_children[:5], alpha=2, rho=1e9, trials=400, seed=2)
        large = simulate_event1(g, orientation, with_children[:50], alpha=2, rho=1e9, trials=400, seed=2)
        assert large.empirical >= small.empirical - 0.05


class TestSimulateEvent2:
    def test_bound_holds_on_large_m(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        m = list(g.nodes())[:120]
        estimate = simulate_event2(g, orientation, m, alpha=2, rho=1e9, trials=400, seed=3)
        # Theorem 3.2's quota |M|/2alpha succeeds essentially always when
        # every node is competitive: each node beats its <= alpha parents
        # with prob >= 1/(alpha+1) ... empirically ~1.
        assert estimate.empirical >= estimate.bound - 0.05

    def test_root_nodes_always_beat_parents(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        roots = [v for v in g.nodes() if not orientation.parents(v)]
        if roots:
            estimate = simulate_event2(g, orientation, roots, alpha=2, rho=1e9, trials=100, seed=4)
            assert estimate.empirical == 1.0


class TestSimulateEvent3:
    def test_runs_and_reports(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        m = [v for v in g.nodes() if len(orientation.children(v)) >= 2][:20]
        estimate = simulate_event3(
            g, orientation, m, alpha=2, rho=1e9, trials=200, seed=5
        )
        assert 0.0 <= estimate.empirical <= 1.0
        assert estimate.trials == 200

    def test_paper_quota_nearly_always_met(self, oriented_arb_graph):
        # The paper quota 1/(8a^2(32a^6+1)) is ~0.0002 for alpha=2: with
        # |M|=20 the quota is < 1 node, so any elimination counts; nodes
        # with children are eliminated often.
        g, orientation = oriented_arb_graph
        m = [v for v in g.nodes() if len(orientation.children(v)) >= 2][:20]
        estimate = simulate_event3(g, orientation, m, alpha=2, rho=1e9, trials=200, seed=6)
        assert estimate.empirical > 0.5

    def test_custom_quota_monotone(self, oriented_arb_graph):
        g, orientation = oriented_arb_graph
        m = [v for v in g.nodes() if orientation.children(v)][:30]
        lenient = simulate_event3(
            g, orientation, m, alpha=2, rho=1e9, trials=200, seed=7, quota_fraction=0.01
        )
        strict = simulate_event3(
            g, orientation, m, alpha=2, rho=1e9, trials=200, seed=7, quota_fraction=0.9
        )
        assert lenient.empirical >= strict.empirical


class TestRhoCutoff:
    def test_non_competitive_nodes_cannot_win(self):
        # With rho=0 nobody is competitive: Event (1) can never happen.
        g = bounded_arboricity_graph(40, 2, seed=8)
        orientation = peeling_orientation(g)
        m = [v for v in g.nodes() if orientation.children(v)][:10]
        estimate = simulate_event1(g, orientation, m, alpha=2, rho=0, trials=100, seed=9)
        assert estimate.empirical == 0.0
