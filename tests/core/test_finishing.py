"""Tests for the finishing-up machinery (§3.3)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.bounded_arb import bounded_arb_independent_set
from repro.core.finishing import finish, restricted_metivier_mis, split_vlo_vhi
from repro.graphs.generators import bounded_arboricity_graph, starry_arboricity_graph
from repro.mis.validation import assert_valid_mis, is_independent_set


class TestSplit:
    def test_partition(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        split = split_vlo_vhi(starry_graph, partial.residual, partial.parameters)
        assert split["vlo"] | split["vhi"] == partial.residual
        assert not (split["vlo"] & split["vhi"])

    def test_vlo_degree_bounded(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        split = split_vlo_vhi(starry_graph, partial.residual, partial.parameters)
        threshold = partial.parameters.final_degree_threshold()
        for v in split["vlo"]:
            deg = sum(1 for u in starry_graph.neighbors(v) if u in partial.residual)
            assert deg <= threshold

    def test_empty_residual(self, arb3_graph):
        from repro.core.parameters import compute_parameters

        params = compute_parameters(3, 10, "practical")
        split = split_vlo_vhi(arb3_graph, set(), params)
        assert split == {"vlo": set(), "vhi": set()}


class TestRestrictedMetivier:
    def test_blocked_nodes_never_join(self, path5):
        selected, _ = restricted_metivier_mis(
            path5, nodes={0, 1, 2, 3, 4}, blocked={0, 2, 4}, seed=1, tag=99
        )
        assert selected <= {1, 3}

    def test_maximal_over_eligible(self, arb3_graph):
        nodes = set(arb3_graph.nodes())
        selected, _ = restricted_metivier_mis(
            arb3_graph, nodes=nodes, blocked=set(), seed=2, tag=99
        )
        assert_valid_mis(arb3_graph, selected)

    def test_empty_inputs(self, arb3_graph):
        selected, iterations = restricted_metivier_mis(
            arb3_graph, nodes=set(), blocked=set(), seed=1, tag=99
        )
        assert selected == set()
        assert iterations == 0


class TestFinish:
    def test_produces_valid_mis(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=4)
        report = finish(starry_graph, partial, alpha=2, seed=4)
        assert_valid_mis(starry_graph, report.mis)

    def test_extends_partial_set(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=4)
        report = finish(starry_graph, partial, alpha=2, seed=4)
        assert partial.independent_set <= report.mis

    def test_stage_outputs_disjoint(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=5)
        report = finish(starry_graph, partial, alpha=2, seed=5)
        assert not (report.ilo & report.ihi)
        assert not (report.ilo & partial.independent_set)
        assert report.bad_members <= partial.bad_set

    def test_round_accounting_nonnegative(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=5)
        report = finish(starry_graph, partial, alpha=2, seed=5)
        assert report.total_finishing_rounds >= 0
        assert report.total_finishing_rounds >= 3 * report.vlo_iterations

    def test_paper_profile_everything_in_finishing(self, arb3_graph):
        # Theta=0: the finishing phase does all the work alone.
        partial = bounded_arb_independent_set(arb3_graph, alpha=3, seed=1, profile="paper")
        assert partial.independent_set == set()
        report = finish(arb3_graph, partial, alpha=3, seed=1)
        assert_valid_mis(arb3_graph, report.mis)


class TestLinialStrategy:
    def test_produces_valid_mis(self, starry_graph):
        partial = bounded_arb_independent_set(starry_graph, alpha=2, seed=4)
        report = finish(starry_graph, partial, alpha=2, seed=4, strategy="linial")
        assert_valid_mis(starry_graph, report.mis)
        assert report.strategy == "linial"

    def test_deterministic_given_partial(self, arb3_graph):
        partial = bounded_arb_independent_set(arb3_graph, alpha=3, seed=2)
        a = finish(arb3_graph, partial, alpha=3, seed=2, strategy="linial")
        b = finish(arb3_graph, partial, alpha=3, seed=99, strategy="linial")
        # The Linial stages ignore the seed entirely: same partial input,
        # same output, regardless of seed.
        assert a.mis == b.mis

    def test_unknown_strategy_rejected(self, arb3_graph):
        from repro.errors import ConfigurationError

        partial = bounded_arb_independent_set(arb3_graph, alpha=3, seed=2)
        with pytest.raises(ConfigurationError):
            finish(arb3_graph, partial, alpha=3, strategy="magic")

    def test_arb_mis_exposes_strategy(self, arb3_graph):
        from repro.core.arb_mis import arb_mis

        result = arb_mis(arb3_graph, alpha=3, seed=1, finishing_strategy="linial")
        assert_valid_mis(arb3_graph, result.mis)
        assert result.extra["report"].finishing.strategy == "linial"
