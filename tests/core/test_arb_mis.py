"""Tests for the full ArbMIS pipeline (Algorithm 2)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.arb_mis import arb_mis
from repro.errors import ConfigurationError
from repro.graphs.generators import (
    bounded_arboricity_graph,
    grid_graph,
    k_tree,
    random_maximal_planar_graph,
    starry_arboricity_graph,
)
from repro.mis.validation import assert_valid_mis


class TestCorrectness:
    def test_valid_on_assorted(self, assorted_graph):
        result = arb_mis(assorted_graph, alpha=3, seed=1)
        assert_valid_mis(assorted_graph, result.mis)

    def test_valid_on_planar_with_alpha_3(self, planar_graph):
        result = arb_mis(planar_graph, alpha=3, seed=2)
        assert_valid_mis(planar_graph, result.mis)

    def test_valid_on_grid_with_alpha_2(self):
        g = grid_graph(12, 12)
        assert_valid_mis(g, arb_mis(g, alpha=2, seed=3).mis)

    def test_valid_on_k_tree(self):
        g = k_tree(80, 4, seed=1)
        assert_valid_mis(g, arb_mis(g, alpha=4, seed=1).mis)

    def test_valid_with_hub_degrees(self):
        g = starry_arboricity_graph(800, 3, hubs=4, seed=1)
        assert_valid_mis(g, arb_mis(g, alpha=3, seed=1).mis)

    def test_runs_even_with_understated_alpha(self, planar_graph):
        # Guarantees need alpha >= arboricity, but the algorithm must still
        # terminate with a valid MIS when alpha is understated.
        result = arb_mis(planar_graph, alpha=1, seed=4)
        assert_valid_mis(planar_graph, result.mis)

    def test_empty_graph(self):
        result = arb_mis(nx.Graph(), alpha=2, seed=0)
        assert result.mis == set()

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(3)
        assert arb_mis(g, alpha=1, seed=0).mis == {3}

    def test_disconnected_components(self):
        g = nx.union(
            bounded_arboricity_graph(40, 2, seed=1),
            nx.relabel_nodes(
                bounded_arboricity_graph(40, 2, seed=2), {i: i + 100 for i in range(40)}
            ),
        )
        assert_valid_mis(g, arb_mis(g, alpha=2, seed=5).mis)

    def test_invalid_alpha(self, arb3_graph):
        with pytest.raises(ConfigurationError):
            arb_mis(arb3_graph, alpha=0)


class TestDeterminism:
    def test_reproducible(self, arb3_graph):
        assert arb_mis(arb3_graph, alpha=3, seed=9).mis == arb_mis(arb3_graph, alpha=3, seed=9).mis

    def test_seeds_vary(self, arb3_graph):
        outputs = {frozenset(arb_mis(arb3_graph, alpha=3, seed=s).mis) for s in range(6)}
        assert len(outputs) > 1


class TestReport:
    def test_report_attached(self, starry_graph):
        result = arb_mis(starry_graph, alpha=2, seed=1)
        report = result.extra["report"]
        assert report.parameters.alpha == 2
        assert report.congest_rounds_estimate == result.congest_rounds
        assert "parameters" in result.extra

    def test_stage_summary_renders(self, starry_graph):
        report = arb_mis(starry_graph, alpha=2, seed=1).extra["report"]
        text = report.stage_summary()
        assert "bounded-arb" in text
        assert "CONGEST rounds" in text

    def test_rounds_accounting_consistent(self, starry_graph):
        result = arb_mis(starry_graph, alpha=2, seed=1)
        report = result.extra["report"]
        expected = (
            3 * (report.reduction.iterations if report.reduction else 0)
            + 3 * report.partial.iterations
            + 2 * report.parameters.theta
            + report.finishing.total_finishing_rounds
        )
        assert result.congest_rounds == expected


class TestDegreeReductionIntegration:
    def test_fires_on_high_degree_graph(self):
        g = starry_arboricity_graph(3000, 2, hubs=2, seed=1)
        result = arb_mis(g, alpha=2, seed=1)
        report = result.extra["report"]
        assert report.reduction is not None
        assert report.reduction.max_degree_after <= report.reduction.threshold
        assert_valid_mis(g, result.mis)

    def test_can_be_disabled(self):
        g = starry_arboricity_graph(1000, 2, hubs=2, seed=2)
        result = arb_mis(g, alpha=2, seed=2, apply_degree_reduction=False)
        assert result.extra["report"].reduction is None
        assert_valid_mis(g, result.mis)


class TestProfiles:
    def test_paper_profile_valid(self, arb3_graph):
        result = arb_mis(arb3_graph, alpha=3, seed=1, profile="paper")
        assert_valid_mis(arb3_graph, result.mis)

    def test_practical_profile_runs_scales(self):
        g = starry_arboricity_graph(600, 2, hubs=3, seed=3)
        result = arb_mis(g, alpha=2, seed=3, apply_degree_reduction=False)
        report = result.extra["report"]
        assert report.parameters.theta >= 1
        assert len(report.partial.scale_stats) == report.parameters.theta


class TestEngineSelection:
    def test_bulk_engine_identical(self, starry_graph):
        scalar = arb_mis(starry_graph, alpha=2, seed=3, engine="scalar")
        bulk = arb_mis(starry_graph, alpha=2, seed=3, engine="bulk")
        assert bulk.mis == scalar.mis
        assert bulk.iterations == scalar.iterations

    def test_unknown_engine_rejected(self, arb3_graph):
        with pytest.raises(ConfigurationError):
            arb_mis(arb3_graph, alpha=3, engine="quantum")
