"""Tests for the per-scale Invariant machinery."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.invariant import (
    active_degrees,
    high_degree_neighbor_counts,
    invariant_holds,
    invariant_violators,
)
from repro.core.parameters import compute_parameters
from repro.mis.engine import active_adjacency


class TestActiveDegrees:
    def test_full_active_set(self, path5):
        adj = active_adjacency(path5)
        degrees = active_degrees(set(path5.nodes()), adj)
        assert degrees == {0: 1, 1: 2, 2: 2, 3: 2, 4: 1}

    def test_partial_active_set(self, path5):
        adj = active_adjacency(path5)
        degrees = active_degrees({0, 1, 2}, adj)
        assert degrees == {0: 1, 1: 2, 2: 1}

    def test_empty(self, path5):
        assert active_degrees(set(), active_adjacency(path5)) == {}


class TestHighDegreeCounts:
    def test_star(self):
        g = nx.star_graph(6)  # hub 0 degree 6, leaves degree 1
        adj = active_adjacency(g)
        counts = high_degree_neighbor_counts(set(g.nodes()), adj, degree_threshold=3)
        assert counts[0] == 0  # no high-degree neighbors of the hub
        for leaf in range(1, 7):
            assert counts[leaf] == 1  # the hub

    def test_threshold_is_strict(self):
        g = nx.star_graph(4)  # hub degree 4
        adj = active_adjacency(g)
        counts = high_degree_neighbor_counts(set(g.nodes()), adj, degree_threshold=4)
        assert counts[1] == 0  # degree 4 is NOT > 4


class TestInvariantPredicate:
    def _double_star(self):
        """Two hubs (degree ~8) sharing a set of leaves."""
        g = nx.Graph()
        for leaf in range(2, 10):
            g.add_edge(0, leaf)
            g.add_edge(1, leaf)
        return g

    def test_violators_on_double_star(self):
        g = self._double_star()
        params = compute_parameters(2, 8, profile="practical")
        adj = active_adjacency(g)
        active = set(g.nodes())
        k = 1
        # High-degree threshold at scale 1 = 8/2 + 2 = 6: both hubs qualify
        # (degree 8); bad threshold = 8/8 = 1.  Every leaf has 2 high-degree
        # neighbors > 1 -> all leaves are violators.
        violators = invariant_violators(active, adj, params, k)
        assert violators == set(range(2, 10))
        assert not invariant_holds(active, adj, params, k)

    def test_holds_after_removal(self):
        g = self._double_star()
        params = compute_parameters(2, 8, profile="practical")
        adj = active_adjacency(g)
        active = set(g.nodes()) - {0}  # one hub gone: each leaf has 1 high neighbor
        assert invariant_holds(active, adj, params, 1)

    def test_trivially_holds_when_empty(self, path5):
        params = compute_parameters(1, 2, profile="practical")
        assert invariant_holds(set(), active_adjacency(path5), params, 1)
