"""Tests for the graceful-degradation contract: MIS-under-faults
validation and the bounded self-healing repair pass."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.parameters import ROUNDS_PER_ITERATION
from repro.core.repair import (
    claimed_members,
    repair,
    validate_under_faults,
)


def path_outputs(graph, members):
    """Synthesize phased-engine-style outputs claiming ``members``."""
    return {
        v: ("mis", 1) if v in members else ("not-mis", 1) for v in graph.nodes
    }


class TestClaimedMembers:
    def test_understands_every_output_convention(self):
        outputs = {
            0: ("mis", 3),          # phased programs
            1: ("mis", 2, 5),       # bounded arb (scale, iteration)
            2: "mis",               # bare string
            3: ("not-mis", 1),
            4: None,
        }
        assert claimed_members(outputs, {0, 1, 2, 3, 4}) == {0, 1, 2}

    def test_restricted_to_survivors(self):
        outputs = {0: "mis", 1: "mis"}
        assert claimed_members(outputs, {1}) == {1}


class TestValidateUnderFaults:
    def test_clean_mis_is_ok(self):
        graph = nx.path_graph(5)
        report = validate_under_faults(graph, path_outputs(graph, {0, 2, 4}))
        assert report.ok
        assert report.members == frozenset({0, 2, 4})
        assert "OK" in report.summary()

    def test_independence_violation_detected(self):
        graph = nx.path_graph(4)
        report = validate_under_faults(graph, path_outputs(graph, {0, 1, 3}))
        assert not report.ok
        assert report.violating_edges == ((0, 1),)

    def test_undominated_node_detected(self):
        graph = nx.path_graph(5)
        report = validate_under_faults(graph, path_outputs(graph, {0}))
        assert not report.ok
        assert report.undominated == (2, 3, 4)

    def test_crashed_dominator_leaves_neighbor_uncovered(self):
        # Node 1 dominated node 0 and 2; node 1 crashed → 0 and 2 are
        # undominated *survivors* even though the original set was an MIS.
        graph = nx.path_graph(3)
        outputs = {0: ("not-mis", 1), 1: ("mis", 1), 2: ("not-mis", 1)}
        report = validate_under_faults(graph, outputs, crashed={1})
        assert report.survivors == frozenset({0, 2})
        assert report.members == frozenset()
        assert report.undominated == (0, 2)

    def test_undecided_nodes_reported(self):
        graph = nx.path_graph(3)
        outputs = {0: ("mis", 1), 1: ("not-mis", 1)}  # node 2 never halted
        report = validate_under_faults(graph, outputs)
        assert report.undecided == (2,)


class TestRepair:
    def test_repairs_independence_violation(self):
        graph = nx.path_graph(4)
        report = repair(graph, path_outputs(graph, {0, 1, 3}), seed=0)
        assert report.repaired
        assert report.after.ok
        assert len(report.evicted) == 1
        assert report.evicted <= {0, 1}

    def test_repairs_coverage_hole(self):
        graph = nx.path_graph(7)
        report = repair(graph, path_outputs(graph, {0}), seed=0)
        assert report.repaired
        assert 0 in report.mis  # untouched healthy member
        assert report.added  # competition filled the hole

    def test_repair_is_local(self):
        # A violation at one end of a long path must not disturb the
        # healthy MIS at the other end.
        graph = nx.path_graph(10)
        members = {0, 1, 3, 5, 7, 9}
        report = repair(graph, path_outputs(graph, members), seed=0)
        assert report.repaired
        assert {3, 5, 7, 9} <= report.mis

    def test_repair_rounds_accounting(self):
        graph = nx.path_graph(4)
        report = repair(graph, path_outputs(graph, {0, 1, 3}), seed=0)
        assert (
            report.repair_rounds
            == 1 + ROUNDS_PER_ITERATION * report.iterations
        )
        clean = repair(graph, path_outputs(graph, {0, 2}), seed=0)
        # Nothing to evict, nothing uncovered → free.
        assert clean.repair_rounds == 0
        assert clean.mis == frozenset({0, 2})

    def test_repair_respects_crashes(self):
        graph = nx.path_graph(3)
        outputs = {0: ("not-mis", 1), 1: ("mis", 1), 2: ("not-mis", 1)}
        report = repair(graph, outputs, crashed={1}, seed=0)
        assert report.repaired
        assert report.mis == frozenset({0, 2})  # survivors' subgraph is edgeless

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_repair_is_deterministic(self, seed):
        graph = nx.gnp_random_graph(30, 0.15, seed=5)
        outputs = path_outputs(graph, set(range(0, 30, 3)))
        first = repair(graph, outputs, seed=seed)
        second = repair(graph, outputs, seed=seed)
        assert first.mis == second.mis
        assert first.repair_rounds == second.repair_rounds

    def test_empty_surviving_subgraph_returns_immediately(self):
        # Everything crashed: the contract holds vacuously and repair must
        # cost nothing — no eviction round, no restricted pass.
        graph = nx.path_graph(4)
        outputs = {v: ("mis", 1) for v in graph.nodes}
        report = repair(graph, outputs, crashed=set(graph.nodes), seed=0)
        assert report.repaired
        assert report.repair_rounds == 0
        assert report.iterations == 0
        assert report.mis == frozenset()
        assert report.evicted == frozenset() and report.added == frozenset()

    def test_clean_report_short_circuits_restricted_pass(self):
        # Nothing to evict and nothing uncovered: repair must return the
        # input verbatim with repair_rounds == 0 — the ``after`` report is
        # the ``before`` report, proving no restricted pass re-ran.
        graph = nx.path_graph(5)
        outputs = path_outputs(graph, {0, 2, 4})
        before = validate_under_faults(graph, outputs)
        assert before.ok
        report = repair(graph, outputs, seed=0, report=before)
        assert report.repair_rounds == 0
        assert report.iterations == 0
        assert report.mis == frozenset({0, 2, 4})
        assert report.after is before

    def test_empty_graph_repairs_for_free(self):
        report = repair(nx.Graph(), {}, seed=0)
        assert report.repaired
        assert report.repair_rounds == 0
        assert report.mis == frozenset()

    def test_reuses_existing_report(self):
        graph = nx.path_graph(4)
        outputs = path_outputs(graph, {0, 1, 3})
        before = validate_under_faults(graph, outputs)
        report = repair(graph, outputs, seed=0, report=before)
        assert report.before is before
        assert report.repaired
