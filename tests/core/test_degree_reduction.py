"""Tests for the Theorem-7.2-style degree reduction preprocessing."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.degree_reduction import (
    degree_reduction_threshold,
    reduce_max_degree,
)
from repro.graphs.generators import starry_arboricity_graph
from repro.mis.validation import is_independent_set


class TestThreshold:
    def test_formula_shape(self):
        import math

        n, alpha = 2**20, 3
        log_n = 20.0
        expected = alpha * 2 ** math.sqrt(log_n * math.log2(log_n))
        assert degree_reduction_threshold(n, alpha) == pytest.approx(expected)

    def test_scales_with_alpha(self):
        assert degree_reduction_threshold(10**4, 4) == pytest.approx(
            2 * degree_reduction_threshold(10**4, 2)
        )

    def test_tiny_n(self):
        assert degree_reduction_threshold(2, 3) == 6.0


class TestReduceMaxDegree:
    def test_noop_when_degree_small(self, arb3_graph):
        result = reduce_max_degree(arb3_graph, alpha=3, seed=1, threshold=10_000)
        assert result.was_noop
        assert result.surviving == set(arb3_graph.nodes())
        assert result.independent_set == set()

    def test_reduces_below_threshold(self):
        g = starry_arboricity_graph(600, 2, hubs=3, seed=1)
        result = reduce_max_degree(g, alpha=2, seed=1, threshold=30)
        assert result.max_degree_before > 30
        assert result.max_degree_after <= 30

    def test_independent_set_valid(self):
        g = starry_arboricity_graph(600, 2, hubs=3, seed=2)
        result = reduce_max_degree(g, alpha=2, seed=2, threshold=30)
        assert is_independent_set(g, result.independent_set)

    def test_removed_nodes_are_is_plus_neighbors(self):
        g = starry_arboricity_graph(400, 2, hubs=2, seed=3)
        result = reduce_max_degree(g, alpha=2, seed=3, threshold=25)
        covered = set(result.independent_set)
        for v in result.independent_set:
            covered.update(g.neighbors(v))
        assert result.removed <= covered

    def test_surviving_partition(self):
        g = starry_arboricity_graph(400, 2, hubs=2, seed=4)
        result = reduce_max_degree(g, alpha=2, seed=4, threshold=25)
        assert result.removed | result.surviving == set(g.nodes())
        assert not (result.removed & result.surviving)

    def test_reproducible(self):
        g = starry_arboricity_graph(300, 2, hubs=2, seed=5)
        a = reduce_max_degree(g, alpha=2, seed=6, threshold=20)
        b = reduce_max_degree(g, alpha=2, seed=6, threshold=20)
        assert a.independent_set == b.independent_set

    def test_star_hub_removed_or_isolated(self):
        g = nx.star_graph(100)
        result = reduce_max_degree(g, alpha=1, seed=0, threshold=10)
        # The hub is the only high-degree node; it joins the IS and the
        # whole star is removed.
        assert result.independent_set == {0}
        assert result.max_degree_after == 0
