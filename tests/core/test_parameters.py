"""Tests for the (Θ, Λ, ρ_k) parameter formulas."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import PROFILES, Parameters, compute_parameters
from repro.errors import ConfigurationError


class TestPaperProfile:
    def test_theta_formula_pinned(self):
        # Delta must be astronomically large before Theta goes positive:
        # for alpha=2, the denominator 1176*16*2^10*ln^2(Delta) first drops
        # below Delta around 10^10.
        alpha, delta = 2, 10**11
        params = compute_parameters(alpha, delta, profile="paper")
        denominator = 1176 * 16 * alpha**10 * math.log(delta) ** 2
        expected = math.floor(math.log2(delta / denominator))
        assert expected > 0
        assert params.theta == expected

    def test_theta_zero_at_laptop_scale(self):
        # The documented degeneracy: any feasible Delta gives Theta = 0.
        for delta in (10, 100, 10_000, 1_000_000):
            assert compute_parameters(2, delta, profile="paper").theta == 0

    def test_lambda_formula_pinned(self):
        alpha, delta, p = 3, 1000, 2
        params = compute_parameters(alpha, delta, profile="paper", p_constant=p)
        inner = 260 * alpha**4 * math.log(delta) ** 2
        expected = math.ceil(p * 8 * alpha**2 * (32 * alpha**6 + 1) * math.log(inner))
        assert params.lambda_iterations == expected

    def test_rho_formula_pinned(self):
        params = compute_parameters(2, 1024, profile="paper")
        assert params.rho(1) == pytest.approx(8 * math.log(1024) * 1024 / 4)
        assert params.rho(3) == pytest.approx(8 * math.log(1024) * 1024 / 16)


class TestPracticalProfile:
    def test_multiple_scales_at_moderate_delta(self):
        params = compute_parameters(3, 500, profile="practical")
        assert params.theta >= 3

    def test_lambda_grows_with_alpha(self):
        lambdas = [
            compute_parameters(a, 100, profile="practical").lambda_iterations
            for a in (1, 2, 4, 8)
        ]
        assert lambdas == sorted(lambdas)
        assert lambdas[-1] > lambdas[0]

    def test_rho_halves_per_scale(self):
        params = compute_parameters(2, 512, profile="practical")
        assert params.rho(2) == pytest.approx(params.rho(1) / 2)

    def test_rho_exceeds_high_degree_threshold(self):
        # The analysis needs low-degree nodes (deg <= Delta/2^(k-1) + alpha)
        # to be competitive: rho_k must be >= that.
        params = compute_parameters(3, 2048, profile="practical")
        for k in params.scales():
            low_degree_cap = params.max_degree / 2 ** (k - 1) + params.alpha
            assert params.rho(k) >= min(low_degree_cap, params.max_degree)


class TestThresholds:
    def test_high_degree_threshold(self):
        params = compute_parameters(2, 256, profile="practical")
        assert params.high_degree_threshold(1) == 256 / 2 + 2
        assert params.high_degree_threshold(3) == 256 / 8 + 2

    def test_bad_threshold(self):
        params = compute_parameters(2, 256, profile="practical")
        assert params.bad_threshold(1) == 256 / 8
        assert params.bad_threshold(2) == 256 / 16

    def test_final_degree_threshold(self):
        params = compute_parameters(2, 256, profile="practical")
        assert params.final_degree_threshold() == 256 / 2**params.theta + 2

    def test_scale_index_one_based(self):
        params = compute_parameters(2, 256, profile="practical")
        with pytest.raises(ConfigurationError):
            params.rho(0)
        with pytest.raises(ConfigurationError):
            params.bad_threshold(-1)

    def test_scales_range(self):
        params = compute_parameters(2, 256, profile="practical")
        assert list(params.scales()) == list(range(1, params.theta + 1))

    def test_total_iterations(self):
        params = compute_parameters(2, 256, profile="practical")
        assert params.total_iterations() == params.theta * params.lambda_iterations


class TestValidation:
    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            compute_parameters(0, 100)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            compute_parameters(2, -1)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            compute_parameters(2, 100, p_constant=0)

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            compute_parameters(2, 100, profile="magic")

    def test_profiles_constant(self):
        assert set(PROFILES) == {"paper", "practical"}

    def test_degenerate_graph(self):
        params = compute_parameters(1, 0, profile="practical")
        assert params.theta == 0
        assert params.total_iterations() == 0

    def test_frozen(self):
        params = compute_parameters(2, 100)
        with pytest.raises(AttributeError):
            params.theta = 99
