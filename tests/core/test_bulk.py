"""Tests for the vectorized BoundedArbIndependentSet engine."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.bounded_arb import bounded_arb_independent_set
from repro.core.bulk import bounded_arb_independent_set_bulk
from repro.graphs.generators import bounded_arboricity_graph, starry_arboricity_graph
from repro.mis.validation import is_independent_set


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_on_arb_graphs(self, seed):
        g = bounded_arboricity_graph(400, 3, seed=seed)
        scalar = bounded_arb_independent_set(g, alpha=3, seed=seed)
        bulk = bounded_arb_independent_set_bulk(g, alpha=3, seed=seed)
        assert bulk.independent_set == scalar.independent_set
        assert bulk.bad_set == scalar.bad_set
        assert bulk.residual == scalar.residual
        assert bulk.iterations == scalar.iterations

    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_on_starry_graphs(self, seed):
        g = starry_arboricity_graph(600, 2, hubs=4, seed=seed)
        scalar = bounded_arb_independent_set(g, alpha=2, seed=seed)
        bulk = bounded_arb_independent_set_bulk(g, alpha=2, seed=seed)
        assert bulk.independent_set == scalar.independent_set
        assert bulk.bad_set == scalar.bad_set
        assert bulk.residual == scalar.residual

    def test_identical_with_early_exit(self, starry_graph):
        scalar = bounded_arb_independent_set(starry_graph, alpha=2, seed=5, early_exit=True)
        bulk = bounded_arb_independent_set_bulk(starry_graph, alpha=2, seed=5, early_exit=True)
        assert bulk.independent_set == scalar.independent_set
        assert bulk.iterations == scalar.iterations

    def test_scale_stats_match(self, starry_graph):
        scalar = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        bulk = bounded_arb_independent_set_bulk(starry_graph, alpha=2, seed=1)
        assert len(bulk.scale_stats) == len(scalar.scale_stats)
        for s, b in zip(scalar.scale_stats, bulk.scale_stats):
            assert (s.scale, s.iterations_used, s.active_before, s.active_after) == (
                b.scale,
                b.iterations_used,
                b.active_before,
                b.active_after,
            )
            assert (s.joined, s.eliminated, s.bad_added) == (b.joined, b.eliminated, b.bad_added)
            assert s.invariant_satisfied == b.invariant_satisfied


class TestBulkCorrectness:
    def test_independent_output(self, starry_graph):
        result = bounded_arb_independent_set_bulk(starry_graph, alpha=2, seed=2)
        assert is_independent_set(starry_graph, result.independent_set)

    def test_empty_graph(self):
        result = bounded_arb_independent_set_bulk(nx.Graph(), alpha=2, seed=0)
        assert result.independent_set == set()
        assert result.residual == set()

    def test_paper_profile_noop(self, arb3_graph):
        result = bounded_arb_independent_set_bulk(arb3_graph, alpha=3, seed=0, profile="paper")
        assert result.parameters.theta == 0
        assert result.residual == set(arb3_graph.nodes())

    def test_runs_at_scale(self):
        g = bounded_arboricity_graph(30_000, 2, seed=1)
        result = bounded_arb_independent_set_bulk(g, alpha=2, seed=1)
        assert is_independent_set(g, result.independent_set)
        covered = set(result.independent_set) | result.bad_set | result.residual
        assert len(result.independent_set) > 0
