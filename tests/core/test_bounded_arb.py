"""Tests for BoundedArbIndependentSet (Algorithm 1), both engines."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.bounded_arb import (
    bounded_arb_congest,
    bounded_arb_independent_set,
)
from repro.core.parameters import compute_parameters
from repro.errors import ConfigurationError
from repro.graphs.generators import bounded_arboricity_graph, starry_arboricity_graph
from repro.mis.validation import is_independent_set


class TestFastEngine:
    def test_output_is_independent(self, starry_graph):
        result = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        assert is_independent_set(starry_graph, result.independent_set)

    def test_sets_are_disjoint(self, starry_graph):
        result = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        i, b, r = result.independent_set, result.bad_set, result.residual
        assert not (i & b) and not (i & r) and not (b & r)

    def test_residual_not_dominated(self, starry_graph):
        # Residual nodes survived: none of them is adjacent to I (they
        # would have been eliminated).
        result = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        for v in result.residual:
            assert not any(
                u in result.independent_set for u in starry_graph.neighbors(v)
            )

    def test_reproducible(self, starry_graph):
        a = bounded_arb_independent_set(starry_graph, alpha=2, seed=5)
        b = bounded_arb_independent_set(starry_graph, alpha=2, seed=5)
        assert a.independent_set == b.independent_set
        assert a.bad_set == b.bad_set

    def test_scale_stats_recorded(self, starry_graph):
        result = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        assert len(result.scale_stats) == result.parameters.theta
        for stats in result.scale_stats:
            assert stats.active_after <= stats.active_before

    def test_invariant_enforced_by_construction(self, starry_graph):
        # After step 2(b) of each scale, no active node violates the
        # scale's invariant — that is exactly what "bad" removal does.
        result = bounded_arb_independent_set(starry_graph, alpha=2, seed=1)
        for stats in result.scale_stats:
            assert stats.invariant_satisfied

    def test_paper_profile_is_noop(self, arb3_graph):
        result = bounded_arb_independent_set(arb3_graph, alpha=3, seed=1, profile="paper")
        assert result.parameters.theta == 0
        assert result.independent_set == set()
        assert result.residual == set(arb3_graph.nodes())

    def test_invalid_alpha(self, arb3_graph):
        with pytest.raises(ConfigurationError):
            bounded_arb_independent_set(arb3_graph, alpha=0)

    def test_explicit_parameters_override(self, arb3_graph):
        from repro.graphs.properties import max_degree

        params = compute_parameters(3, max_degree(arb3_graph), "practical")
        result = bounded_arb_independent_set(arb3_graph, alpha=3, parameters=params)
        assert result.parameters is params

    def test_early_exit_still_valid(self, starry_graph):
        result = bounded_arb_independent_set(
            starry_graph, alpha=2, seed=3, early_exit=True
        )
        assert is_independent_set(starry_graph, result.independent_set)
        for stats in result.scale_stats:
            assert stats.invariant_satisfied

    def test_early_exit_uses_fewer_iterations(self, starry_graph):
        eager = bounded_arb_independent_set(starry_graph, alpha=2, seed=3, early_exit=True)
        full = bounded_arb_independent_set(starry_graph, alpha=2, seed=3, early_exit=False)
        assert eager.iterations <= full.iterations


class TestCongestEngine:
    def test_bit_identical_to_fast(self, starry_graph):
        fast = bounded_arb_independent_set(starry_graph, alpha=2, seed=7)
        slow = bounded_arb_congest(starry_graph, alpha=2, seed=7)
        assert fast.independent_set == slow.independent_set
        assert fast.bad_set == slow.bad_set
        assert fast.residual == slow.residual

    def test_identity_across_seeds(self, arb3_graph):
        for seed in (0, 1, 2):
            fast = bounded_arb_independent_set(arb3_graph, alpha=3, seed=seed)
            slow = bounded_arb_congest(arb3_graph, alpha=3, seed=seed)
            assert fast.independent_set == slow.independent_set

    def test_congest_budget_respected(self, small_tree):
        result = bounded_arb_congest(small_tree, alpha=1, seed=2, enforce_congest=True)
        assert is_independent_set(small_tree, result.independent_set)

    def test_round_budget(self, starry_graph):
        result = bounded_arb_congest(starry_graph, alpha=2, seed=1)
        params = result.parameters
        assert result.extra["congest_rounds"] <= params.theta * (
            3 * params.lambda_iterations + 2
        )
