"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.MessageSizeExceededError,
            errors.AlgorithmError,
            errors.NotAnIndependentSetError,
            errors.NotMaximalError,
            errors.GraphError,
            errors.OrientationError,
            errors.DecompositionError,
        ]
        for exc in leaves:
            assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.MessageSizeExceededError, errors.SimulationError)
        assert issubclass(errors.NotAnIndependentSetError, errors.AlgorithmError)
        assert issubclass(errors.NotMaximalError, errors.AlgorithmError)
        assert issubclass(errors.OrientationError, errors.GraphError)
        assert issubclass(errors.DecompositionError, errors.GraphError)

    def test_one_except_clause_catches_library_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.OrientationError("x")

    def test_message_size_error_fields(self):
        exc = errors.MessageSizeExceededError(1, 2, 500, 100)
        assert exc.sender == 1
        assert exc.receiver == 2
        assert exc.bits == 500
        assert exc.limit == 100
        assert "500 bits" in str(exc)
