"""Property-based tests for the shard partitioner.

Hypothesis drives :func:`repro.mpc.partition.partition_csr` over random
edge sets and shard counts and checks the three invariants the runtime
leans on (see the partition module docstring): the ranges partition the
position space, the frontier relation is symmetric and complete, and the
per-shard fragments reassemble into the exact original CSR — including
graphs with non-integer labels, whose translation must survive the
round-trip.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import csr_from_edges, csr_from_graph
from repro.mpc import partition_csr, reassemble

# A random graph as (n, edge endpoint pairs); duplicates and self-loops
# are allowed because csr_from_edges dedups them, which is exactly the
# construction path the runtime uses.
graph_strategy = st.integers(min_value=0, max_value=40).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.integers(min_value=0, max_value=max(0, n - 1)),
            ),
            max_size=120,
        )
        if n
        else st.just([]),
    )
)

shard_counts = st.integers(min_value=1, max_value=9)


def _build(n, edges):
    u = np.array([a for a, _ in edges], dtype=np.int64)
    v = np.array([b for _, b in edges], dtype=np.int64)
    return csr_from_edges(n, u, v)


@given(graph_strategy, shard_counts)
@settings(max_examples=60, deadline=None)
def test_ranges_partition_position_space(graph, k):
    n, edges = graph
    plan = partition_csr(_build(n, edges), k)
    assert plan.k == k
    assert plan.shards[0].start == 0
    assert plan.shards[-1].stop == n
    for left, right in zip(plan.shards, plan.shards[1:]):
        assert left.stop == right.start
    for shard in plan.shards:
        assert (plan.owner[shard.start : shard.stop] == shard.index).all()


@given(graph_strategy, shard_counts)
@settings(max_examples=60, deadline=None)
def test_frontier_symmetric_and_complete(graph, k):
    n, edges = graph
    csr = _build(n, edges)
    plan = partition_csr(csr, k)
    for shard in plan.shards:
        # Symmetry: what s ships to t is exactly what t receives from s.
        for t, positions in shard.frontier.items():
            assert np.array_equal(plan.shards[t].ghosts[shard.index], positions)
        for t, positions in shard.ghosts.items():
            assert np.array_equal(plan.shards[t].frontier[shard.index], positions)
        # Completeness: every neighbor of a local row is local or a ghost.
        ghost_set = set()
        for positions in shard.ghosts.values():
            ghost_set.update(int(p) for p in positions)
        for row in range(shard.start, shard.stop):
            for j in csr.indices[csr.indptr[row] : csr.indptr[row + 1]]:
                j = int(j)
                assert shard.start <= j < shard.stop or j in ghost_set
        # Frontiers and ghosts are sorted (the wire-format contract) and
        # owned by the right side.
        for t, positions in shard.frontier.items():
            assert (np.diff(positions) > 0).all() if positions.size > 1 else True
            assert (plan.owner[positions] == shard.index).all()
        for t, positions in shard.ghosts.items():
            assert (plan.owner[positions] == t).all()


@given(graph_strategy, shard_counts)
@settings(max_examples=60, deadline=None)
def test_reassemble_round_trips_csr(graph, k):
    n, edges = graph
    csr = _build(n, edges)
    rebuilt = reassemble(partition_csr(csr, k))
    assert np.array_equal(rebuilt.indptr, csr.indptr)
    assert np.array_equal(rebuilt.indices, csr.indices)
    assert np.array_equal(rebuilt.degrees(), csr.degrees())
    # Neighbor lists stay sorted per row (csr_from_edges guarantees it).
    for row in range(n):
        segment = rebuilt.indices[rebuilt.indptr[row] : rebuilt.indptr[row + 1]]
        assert (np.diff(segment) > 0).all() if segment.size > 1 else True


@given(st.integers(min_value=0, max_value=25), shard_counts)
@settings(max_examples=30, deadline=None)
def test_reassemble_preserves_non_integer_labels(n, k):
    graph = nx.relabel_nodes(
        nx.gnp_random_graph(n, 0.2, seed=n), lambda i: f"v{i}"
    )
    csr = csr_from_graph(graph)
    rebuilt = reassemble(partition_csr(csr, k))
    if n:
        assert not rebuilt.integer_labeled
    assert list(rebuilt.labels) == list(csr.labels)
    full = np.ones(n, dtype=bool)
    assert rebuilt.label_set(full) == set(graph.nodes)
