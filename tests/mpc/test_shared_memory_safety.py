"""Regression tests for S1: shared static CSR arrays are read-only.

The sharded runtime publishes the graph's static CSR (indptr, indices,
key_ids) through ``multiprocessing.shared_memory`` and every pool worker
attaches the same buffers.  A single stray write in any worker would
corrupt the graph for all of them — and, because the round math is
deterministic, corrupt it *identically* on every rerun, which is the
worst kind of bug to localize.  The runtime therefore freezes every
attachment (``flags.writeable = False``); these tests pin that a write
attempt raises ``ValueError`` instead of racing, on both sides of the
pool boundary.  The lint rule S1 enforces the same invariant statically.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.csr import csr_from_graph
from repro.mpc import run_sharded
from repro.mpc.runtime import _SharedStatics, _WORKER, _pool_init


def _graph():
    return nx.gnp_random_graph(40, 0.12, seed=4)


def test_coordinator_shared_views_are_frozen():
    csr = csr_from_graph(_graph())
    statics = _SharedStatics(csr, run_id="test-run")
    try:
        for key in ("indptr", "indices", "key_ids"):
            shm = statics._shms[key]
            source = getattr(csr, key)
            view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
            # The block was filled before freezing, so contents match ...
            np.testing.assert_array_equal(view, source)
    finally:
        statics.close()


def test_worker_attachment_write_raises():
    """A pool worker writing any shared static CSR array must raise."""
    csr = csr_from_graph(_graph())
    statics = _SharedStatics(csr, run_id="test-run")
    saved_worker = dict(_WORKER)
    try:
        # Run the real pool initializer in-process: it attaches the same
        # shared blocks a forked/spawned worker would.
        _pool_init(
            "test-run",
            statics.names,
            n=csr.n,
            nnz=int(csr.indices.shape[0]),
            k=2,
        )
        worker_csr = _WORKER["csr"]
        for name in ("indptr", "indices", "key_ids"):
            array = getattr(worker_csr, name)
            assert not array.flags.writeable, name
            with pytest.raises(ValueError):
                array[0] = 1
        # close worker-side attachments before the coordinator unlinks
        for shm in _WORKER["shms"].values():
            shm.close()
    finally:
        _WORKER.clear()
        _WORKER.update(saved_worker)
        statics.close()


def test_frozen_statics_do_not_change_results():
    """Freezing is transparent: pooled == inline on the same seed."""
    graph = _graph()
    inline = run_sharded("luby-b", graph, seed=6, shards=4, workers=0)
    pooled = run_sharded("luby-b", graph, seed=6, shards=4, workers=2)
    assert pooled.mis == inline.mis
    assert pooled.iterations == inline.iterations
