"""Differential tests for the sharded MPC runtime (tier 1).

The load-bearing equivalence of docs/mpc_runtime.md: for every algorithm,
every seed, and every shard count, the sharded engine returns the same
MIS, the same iteration count, and the same active-set trajectory as the
bulk engine — which is itself bit-identical to the scalar engine.  A
single run therefore has four independent witnesses (scalar, bulk, and
mpc at several shard counts), and any divergence pinpoints the layer
that broke.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import random_tree
from repro.mis.registry import get_algorithm
from repro.mpc import run_sharded

ALGORITHMS = ["metivier", "luby-a", "luby-b", "ghaffari"]
SHARD_COUNTS = [1, 2, 4, 8]


def graphs():
    return [
        nx.gnp_random_graph(60, 0.1, seed=1),
        nx.gnp_random_graph(150, 0.03, seed=7),
        random_tree(80, seed=3),
    ]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_mpc_matches_bulk_and_scalar_across_shard_counts(algorithm):
    for graph in graphs():
        seed = 5
        scalar = get_algorithm(algorithm, engine="scalar")(graph, seed=seed)
        bulk = get_algorithm(algorithm, engine="bulk")(graph, seed=seed)
        assert bulk.mis == scalar.mis
        assert bulk.iterations == scalar.iterations
        for shards in SHARD_COUNTS:
            mpc = run_sharded(algorithm, graph, seed=seed, shards=shards)
            assert mpc.mis == bulk.mis, (algorithm, shards)
            assert mpc.iterations == bulk.iterations, (algorithm, shards)
            assert mpc.active_history == bulk.active_history, (algorithm, shards)
            assert mpc.algorithm == f"{algorithm}-mpc"
            assert mpc.extra["completed"]
            assert mpc.extra["shards"] == shards
            assert mpc.extra["comm"]["total_bytes"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_pool_mode_matches_inline(algorithm):
    """Process-pool execution is the same computation as inline."""
    graph = nx.gnp_random_graph(90, 0.06, seed=2)
    inline = run_sharded(algorithm, graph, seed=2, shards=4, workers=0)
    pooled = run_sharded(algorithm, graph, seed=2, shards=4, workers=2)
    assert pooled.mis == inline.mis
    assert pooled.iterations == inline.iterations
    assert pooled.active_history == inline.active_history


def test_more_shards_than_nodes():
    graph = nx.path_graph(5)
    ref = get_algorithm("metivier", engine="bulk")(graph, seed=0)
    res = run_sharded("metivier", graph, seed=0, shards=16)
    assert res.mis == ref.mis
    assert res.iterations == ref.iterations


def test_empty_graph():
    res = run_sharded("luby-b", nx.Graph(), seed=0, shards=4)
    assert res.mis == set()
    assert res.iterations == 0
    assert res.algorithm == "luby-b-mpc"


def test_non_integer_labels_translate():
    graph = nx.relabel_nodes(
        nx.gnp_random_graph(40, 0.12, seed=6), lambda i: f"node-{i}"
    )
    ref = get_algorithm("ghaffari", engine="bulk")(graph, seed=6)
    res = run_sharded("ghaffari", graph, seed=6, shards=3)
    assert res.mis == ref.mis
    assert all(isinstance(label, str) for label in res.mis)


def test_registry_engine_knob(monkeypatch):
    graph = nx.gnp_random_graph(50, 0.1, seed=4)
    fn = get_algorithm("metivier", engine="mpc")
    result = fn(graph, seed=4, shards=2)
    assert result.algorithm == "metivier-mpc"
    monkeypatch.setenv("REPRO_MIS_ENGINE", "mpc")
    monkeypatch.setenv("REPRO_MPC_SHARDS", "3")
    via_env = get_algorithm("metivier")(graph, seed=4)
    assert via_env.algorithm == "metivier-mpc"
    assert via_env.extra["shards"] == 3
    assert via_env.mis == result.mis
    # Names without an mpc twin fall back to their plain registration.
    assert get_algorithm("arb-mis", engine="mpc") is get_algorithm("arb-mis")


def test_unknown_algorithm_and_engine_rejected():
    with pytest.raises(ConfigurationError):
        run_sharded("nope", nx.path_graph(3))
    with pytest.raises(ConfigurationError):
        get_algorithm("metivier", engine="distributed")
