"""Communication-budget tests for the sharded runtime.

On a planted bounded-arboricity instance, tightening the per-shard
budget must flip shards into sparsified (delta) pushes — visibly in the
meters — without changing the computed MIS by a single bit, because
sparsification only drops unchanged-entry refreshes, never
correctness-bearing updates.  An impossible hard cap raises the typed
:class:`~repro.errors.CommBudgetExceededError` instead of truncating.
"""

from __future__ import annotations

import pytest

from repro.errors import CommBudgetExceededError, ConfigurationError
from repro.graphs.csr import csr_bounded_arboricity
from repro.mpc import CommBudget, ShardCommMeter, run_sharded


def _instance():
    return csr_bounded_arboricity(1500, alpha=3, seed=5)


def test_sparsification_triggers_without_changing_the_mis():
    csr = _instance()
    free = run_sharded("metivier", csr, seed=5, shards=4)
    free_comm = free.extra["comm"]
    # Soft cap at half the worst observed round: the peak-hold estimator
    # must cross the sparsification threshold after the first rounds.
    capacity = max(free_comm["max_round_bytes_by_shard"]) // 2
    budget = CommBudget(capacity=capacity, hard_capacity=capacity * 50)
    tight = run_sharded("metivier", csr, seed=5, shards=4, budget=budget)
    tight_comm = tight.extra["comm"]

    assert tight.mis == free.mis
    assert tight.iterations == free.iterations
    assert tight.active_history == free.active_history
    assert sum(tight_comm["sparsified_rounds_by_shard"]) > 0
    assert tight_comm["total_bytes"] < free_comm["total_bytes"]
    assert all(p > 0 for p in tight_comm["peak_hold_by_shard"])
    assert all(
        m <= budget.hard_capacity
        for m in tight_comm["max_round_bytes_by_shard"]
    )


def test_unlimited_budget_never_sparsifies():
    free = run_sharded("ghaffari", _instance(), seed=5, shards=4)
    assert sum(free.extra["comm"]["sparsified_rounds_by_shard"]) == 0


def test_impossible_hard_cap_raises_typed_error():
    with pytest.raises(CommBudgetExceededError) as excinfo:
        run_sharded(
            "metivier",
            _instance(),
            seed=5,
            shards=4,
            budget=CommBudget(capacity=8, hard_capacity=8),
        )
    err = excinfo.value
    assert err.limit == 8
    assert err.bytes_needed > 8
    assert err.round_index == 0
    assert "correctness-bearing" in str(err)


def test_budget_validation():
    with pytest.raises(ConfigurationError):
        CommBudget(capacity=0)
    with pytest.raises(ConfigurationError):
        CommBudget(capacity=100, hard_capacity=50)
    with pytest.raises(ConfigurationError):
        CommBudget(soft_fraction=0.0)
    with pytest.raises(ConfigurationError):
        CommBudget(decay=1.0)
    sized = CommBudget.for_shard_size(1000)
    assert sized.capacity == 1000 * 8 * 8
    assert sized.hard_capacity == 4 * sized.capacity


def test_peak_hold_decays_but_holds_recent_peaks():
    meter = ShardCommMeter(0, CommBudget(capacity=1000, decay=0.5))
    meter.charge(800, 0)
    meter.end_round()
    assert meter.peak_hold == 800.0
    assert meter.should_sparsify  # 800 >= 0.75 * 1000
    meter.charge(10, 1)
    meter.end_round()
    assert meter.peak_hold == 400.0  # one quiet round decays, not resets
    assert not meter.should_sparsify
    meter.charge(10, 2)
    meter.end_round()
    assert meter.peak_hold == 200.0
