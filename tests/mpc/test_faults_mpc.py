"""Fault-path tests for the sharded runtime.

Shard-worker crashes flow through the same
:class:`~repro.analysis.runner.FailurePolicy` contract as sweep cells:
a retried crash heals invisibly (the rerun is bit-identical to a clean
run), exhausted retries degrade the run to an MIS of the surviving
subgraph (validated by :func:`repro.core.repair.validate_under_faults`),
and every failed attempt leaves a ``sweep-failure`` event in the obs
stream.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.runner import FailurePolicy
from repro.core.repair import validate_under_faults
from repro.mis.validation import is_independent_set, is_maximal_independent_set
from repro.mpc import InjectedShardCrash, ShardCrash, run_sharded
from repro.obs.events import EVENT_SWEEP_FAILURE
from repro.obs.manifest import RunManifest
from repro.obs.session import ObsSession
from repro.obs.sinks import MemorySink


def _graph():
    return nx.gnp_random_graph(100, 0.06, seed=2)


def _session():
    sink = MemorySink()
    manifest = RunManifest(run_id="t", kind="test", created_at="t")
    return ObsSession("unused", manifest, sink), sink


def test_crash_with_retry_completes_identically():
    """One mid-round crash, healed by a retry: same result as a clean run."""
    graph = _graph()
    clean = run_sharded("metivier", graph, seed=2, shards=4)
    session, sink = _session()
    result = run_sharded(
        "metivier",
        graph,
        seed=2,
        shards=4,
        crashes=[ShardCrash(iteration=1, shard=2, attempts=1)],
        failure_policy=FailurePolicy(on_error="retry"),
        obs=session,
    )
    assert result.mis == clean.mis
    assert result.iterations == clean.iterations
    assert "crashed" not in result.extra
    failures = [e for e in sink.events if e.kind == EVENT_SWEEP_FAILURE]
    assert len(failures) == 1
    record = failures[0].data
    assert record["family"] == "mpc-shard"
    assert record["shard"] == 2
    assert record["error_type"] == "InjectedShardCrash"
    assert record["algorithm"] == "metivier-mpc"


def test_crash_in_pool_worker_heals_too():
    """The crash fires inside a real pool worker and still retries clean."""
    graph = _graph()
    clean = run_sharded("luby-b", graph, seed=2, shards=4)
    result = run_sharded(
        "luby-b",
        graph,
        seed=2,
        shards=4,
        workers=2,
        crashes=[ShardCrash(iteration=0, shard=1, attempts=1)],
        failure_policy=FailurePolicy(on_error="retry"),
    )
    assert result.mis == clean.mis
    assert result.iterations == clean.iterations


def test_exhausted_retries_degrade_to_surviving_subgraph():
    graph = _graph()
    session, sink = _session()
    result = run_sharded(
        "metivier",
        graph,
        seed=2,
        shards=4,
        crashes=[ShardCrash(iteration=1, shard=2, attempts=99)],
        failure_policy=FailurePolicy(on_error="retry", retries=1),
        obs=session,
    )
    assert result.extra["dead_shards"] == [2]
    crashed = set(result.extra["crashed"])
    assert crashed, "the dead shard still had active nodes"
    survivors = set(graph.nodes) - crashed
    assert set(result.mis) <= survivors
    assert is_independent_set(graph, result.mis)
    assert is_maximal_independent_set(graph.subgraph(survivors), result.mis)
    report = validate_under_faults(graph, result.extra["outputs"], crashed)
    assert report.ok, report
    failures = [e for e in sink.events if e.kind == EVENT_SWEEP_FAILURE]
    assert len(failures) == 2  # one per attempt: first try + one retry
    assert all(e.data["shard"] == 2 for e in failures)


def test_fail_fast_raises_the_crash():
    with pytest.raises(InjectedShardCrash):
        run_sharded(
            "metivier",
            _graph(),
            seed=2,
            shards=4,
            crashes=[ShardCrash(iteration=0, shard=0, attempts=99)],
            failure_policy=FailurePolicy(on_error="fail-fast"),
        )
