"""Property-based tests (hypothesis) on core invariants.

These cover the properties that must hold for *every* input, not just the
fixtures: MIS validity of every algorithm on arbitrary graphs, dual-engine
bit identity, forest partition soundness, coloring properness, read-k
structure detection, and bound monotonicity.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.arb_mis import arb_mis
from repro.core.bounded_arb import bounded_arb_congest, bounded_arb_independent_set
from repro.deterministic.cole_vishkin import forest_three_coloring
from repro.graphs.forests import forest_partition_greedy, is_forest_partition
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.graphs.orientation import bfs_forest_orientation, peeling_orientation
from repro.mis.ghaffari import ghaffari_mis
from repro.mis.luby import luby_a_mis, luby_b_mis
from repro.mis.metivier import metivier_mis, metivier_mis_congest
from repro.mis.validation import assert_valid_mis, is_independent_set
from repro.readk.bounds import read_k_conjunction_bound, read_k_lower_tail_form2
from repro.readk.family import shared_parent_family

# -- graph strategies --------------------------------------------------------


@st.composite
def arbitrary_graph(draw, max_nodes: int = 24):
    """An arbitrary simple graph from a random edge mask."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs)))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(pair for pair, keep in zip(all_pairs, mask) if keep)
    return g


@st.composite
def small_forest(draw):
    """A forest: a few disjoint random trees."""
    tree_sizes = draw(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = nx.Graph()
    offset = 0
    for i, size in enumerate(tree_sizes):
        t = random_tree(size, seed=seed + i)
        g.add_nodes_from(v + offset for v in t.nodes())
        g.add_edges_from((u + offset, v + offset) for u, v in t.edges())
        offset += size
    return g


SLOWISH = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# -- MIS validity for every algorithm on arbitrary graphs ---------------------


class TestMISValidityProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_metivier_always_valid(self, graph, seed):
        assert_valid_mis(graph, metivier_mis(graph, seed=seed).mis)

    @SLOWISH
    @given(graph=arbitrary_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_luby_a_always_valid(self, graph, seed):
        assert_valid_mis(graph, luby_a_mis(graph, seed=seed).mis)

    @SLOWISH
    @given(graph=arbitrary_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_luby_b_always_valid(self, graph, seed):
        assert_valid_mis(graph, luby_b_mis(graph, seed=seed).mis)

    @SLOWISH
    @given(graph=arbitrary_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_ghaffari_always_valid(self, graph, seed):
        assert_valid_mis(graph, ghaffari_mis(graph, seed=seed).mis)

    @SLOWISH
    @given(
        graph=arbitrary_graph(max_nodes=18),
        seed=st.integers(min_value=0, max_value=1000),
        alpha=st.integers(min_value=1, max_value=4),
    )
    def test_arb_mis_always_valid_even_with_wrong_alpha(self, graph, seed, alpha):
        # Validity must not depend on alpha actually bounding the arboricity.
        assert_valid_mis(graph, arb_mis(graph, alpha=alpha, seed=seed).mis)


class TestDualEngineIdentity:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=16), seed=st.integers(min_value=0, max_value=500))
    def test_metivier_engines_bit_identical(self, graph, seed):
        assert metivier_mis(graph, seed=seed).mis == metivier_mis_congest(graph, seed=seed).mis

    @SLOWISH
    @given(seed=st.integers(min_value=0, max_value=200), alpha=st.integers(min_value=1, max_value=3))
    def test_bounded_arb_engines_identical(self, seed, alpha):
        g = bounded_arboricity_graph(30, alpha, seed=seed)
        fast = bounded_arb_independent_set(g, alpha=alpha, seed=seed)
        slow = bounded_arb_congest(g, alpha=alpha, seed=seed)
        assert fast.independent_set == slow.independent_set
        assert fast.bad_set == slow.bad_set
        assert fast.residual == slow.residual


# -- structural properties -----------------------------------------------------


class TestForestProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=16))
    def test_greedy_partition_always_valid(self, graph):
        parts = forest_partition_greedy(graph)
        assert is_forest_partition(graph, parts)

    @SLOWISH
    @given(forest=small_forest())
    def test_bfs_orientation_out_degree_one(self, forest):
        orientation = bfs_forest_orientation(forest)
        assert orientation.max_out_degree() <= 1

    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=16))
    def test_peeling_orientation_covers_graph(self, graph):
        orientation = peeling_orientation(graph)
        assert len(orientation.directed_edges()) == graph.number_of_edges()


class TestColoringProperties:
    @SLOWISH
    @given(forest=small_forest())
    def test_cole_vishkin_always_proper_and_three_colors(self, forest):
        orientation = bfs_forest_orientation(forest)
        edges = [
            (v, next(iter(orientation.parents(v))))
            for v in forest.nodes()
            if orientation.parents(v)
        ]
        result = forest_three_coloring(forest.nodes(), edges)
        assert set(result.colors.values()) <= {0, 1, 2}
        for child, parent in edges:
            assert result.colors[child] != result.colors[parent]


# -- read-k properties ----------------------------------------------------------


class TestReadKProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        n=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=50),
    )
    def test_conjunction_bound_dominated_by_independence(self, p, n, k):
        assert read_k_conjunction_bound(p, n, k) >= p**n - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        delta=st.floats(min_value=0.01, max_value=1.0),
        expectation=st.floats(min_value=0.1, max_value=500.0),
        k=st.integers(min_value=1, max_value=40),
    )
    def test_tail_bound_monotone_in_k(self, delta, expectation, k):
        assert read_k_lower_tail_form2(delta, expectation, k) <= read_k_lower_tail_form2(
            delta, expectation, k + 1
        ) + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(
        indicators=st.integers(min_value=2, max_value=8),
        children=st.integers(min_value=1, max_value=3),
        sharing=st.integers(min_value=1, max_value=4),
    )
    def test_shared_parent_family_read_parameter(self, indicators, children, sharing):
        sharing = min(sharing, indicators)
        fam = shared_parent_family(indicators, children, sharing)
        assert fam.read_parameter() == sharing


# -- MIS size sanity -------------------------------------------------------------


class TestSizeProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=20), seed=st.integers(min_value=0, max_value=100))
    def test_mis_size_at_least_n_over_delta_plus_one(self, graph, seed):
        # Any MIS has size >= n / (Delta + 1).
        result = metivier_mis(graph, seed=seed)
        delta = max((d for _, d in graph.degree()), default=0)
        assert len(result.mis) >= math.ceil(graph.number_of_nodes() / (delta + 1))

    @SLOWISH
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_tree_mis_at_least_half_of_maximum(self, seed):
        # On trees, the maximum independent set is >= n/2; any MIS is a
        # 2-approximation of nothing in general — but it IS at least
        # n/(Delta+1); check the sharper bound that no MIS on a path of
        # even length is smaller than n/3.
        path = nx.path_graph(12)
        result = metivier_mis(path, seed=seed)
        assert len(result.mis) >= 4


# -- extension subsystems ---------------------------------------------------


class TestMatchingProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=18), seed=st.integers(min_value=0, max_value=500))
    def test_israeli_itai_always_maximal(self, graph, seed):
        from repro.matching.israeli_itai import israeli_itai_matching
        from repro.matching.validation import assert_valid_maximal_matching

        result = israeli_itai_matching(graph, seed=seed)
        assert_valid_maximal_matching(graph, result.matching)

    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=14), seed=st.integers(min_value=0, max_value=200))
    def test_israeli_itai_engines_identical(self, graph, seed):
        from repro.matching.israeli_itai import (
            israeli_itai_matching,
            israeli_itai_matching_congest,
        )

        fast = israeli_itai_matching(graph, seed=seed)
        slow = israeli_itai_matching_congest(graph, seed=seed)
        assert fast.matching == slow.matching


class TestLinialProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=16))
    def test_delta_plus_one_coloring_proper_and_small(self, graph):
        from repro.deterministic.linial import delta_plus_one_coloring

        coloring = delta_plus_one_coloring(graph)
        coloring.validate(graph)
        delta = max((d for _, d in graph.degree()), default=0)
        assert coloring.palette <= delta + 1

    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=16))
    def test_bounded_degree_mis_maximal(self, graph):
        from repro.deterministic.linial import bounded_degree_mis
        from repro.mis.validation import is_maximal_independent_set

        mis, _ = bounded_degree_mis(graph)
        assert is_maximal_independent_set(graph, mis)


class TestBulkEngineProperties:
    @SLOWISH
    @given(graph=arbitrary_graph(max_nodes=20), seed=st.integers(min_value=0, max_value=300))
    def test_bulk_identical_to_scalar(self, graph, seed):
        from repro.mis.bulk import metivier_mis_bulk

        fast = metivier_mis(graph, seed=seed)
        bulk = metivier_mis_bulk(graph, seed=seed)
        assert bulk.mis == fast.mis
        assert bulk.iterations == fast.iterations


class TestLWProperties:
    @SLOWISH
    @given(seed=st.integers(min_value=0, max_value=300), n=st.integers(min_value=1, max_value=80))
    def test_lw_valid_on_random_trees(self, seed, n):
        from repro.mis.lenzen_wattenhofer import lenzen_wattenhofer_tree_mis

        tree = random_tree(n, seed=seed)
        result = lenzen_wattenhofer_tree_mis(tree, seed=seed)
        assert_valid_mis(tree, result.mis)


class TestSynchronizerProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        graph=arbitrary_graph(max_nodes=12),
        seed=st.integers(min_value=0, max_value=200),
        delay_seed=st.integers(min_value=0, max_value=200),
    )
    def test_alpha_synchronizer_equivalence(self, graph, seed, delay_seed):
        from repro.congest.asynchronous import AlphaSynchronizer, AsynchronousNetwork
        from repro.congest.network import Network
        from repro.congest.simulator import SynchronousSimulator
        from repro.mis.engine import mis_from_outputs
        from repro.mis.metivier import MetivierMIS

        net = Network(graph)
        sync = SynchronousSimulator(net, seed=seed).run(MetivierMIS())
        synchronizer = AlphaSynchronizer(net, seed=seed)
        synchronizer.async_net = AsynchronousNetwork(net, seed=delay_seed)
        asyn = synchronizer.run(MetivierMIS())
        assert mis_from_outputs(asyn.outputs) == mis_from_outputs(sync.outputs)
