"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import (
    bounded_arboricity_graph,
    random_maximal_planar_graph,
    random_tree,
    starry_arboricity_graph,
)


@pytest.fixture
def path5() -> nx.Graph:
    return nx.path_graph(5)


@pytest.fixture
def triangle() -> nx.Graph:
    return nx.complete_graph(3)


@pytest.fixture
def small_tree() -> nx.Graph:
    return random_tree(60, seed=3)


@pytest.fixture
def arb3_graph() -> nx.Graph:
    """A 200-node arboricity-≤3 graph (union of 3 random trees)."""
    return bounded_arboricity_graph(200, 3, seed=5)


@pytest.fixture
def starry_graph() -> nx.Graph:
    """A 300-node arboricity-≤2 graph with hub nodes (high Δ)."""
    return starry_arboricity_graph(300, 2, hubs=3, seed=5)


@pytest.fixture
def planar_graph() -> nx.Graph:
    return random_maximal_planar_graph(80, seed=2)


@pytest.fixture(params=["path", "tree", "arb2", "planar", "gnp"])
def assorted_graph(request) -> nx.Graph:
    """A small zoo of graph shapes for algorithm-agnostic tests."""
    if request.param == "path":
        return nx.path_graph(30)
    if request.param == "tree":
        return random_tree(50, seed=11)
    if request.param == "arb2":
        return bounded_arboricity_graph(60, 2, seed=11)
    if request.param == "planar":
        return random_maximal_planar_graph(40, seed=11)
    return nx.gnp_random_graph(40, 0.15, seed=11)
