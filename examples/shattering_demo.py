#!/usr/bin/env python3
"""Shattering in action: watch Algorithm 1 dismantle a hub-heavy graph.

The paper's central mechanism is *graph shattering*: run the randomized
competition until the graph breaks into a small bad set B whose components
are finished deterministically.  Uniform sparse graphs never produce an
interesting B; hub-skewed arboricity graphs (a few nodes of degree
Θ(n/hubs)) do exercise every scale.  This example prints:

* the parameter schedule (Θ scales, Λ iterations, ρ_k cutoffs),
* the per-scale progress (actives, joins, eliminations, forced-bad),
* the shattering report on G[B] vs the Lemma 3.7 bound,
* the finishing-phase accounting (Vlo/Vhi split + component costs).

Run:  python examples/shattering_demo.py
"""

from repro.analysis.tables import render_rows
from repro.core.arb_mis import arb_mis
from repro.core.shattering import analyze_bad_components
from repro.graphs.generators import starry_arboricity_graph
from repro.graphs.properties import max_degree
from repro.mis.validation import assert_valid_mis


def main() -> None:
    n, alpha, hubs, seed = 4096, 2, 6, 13
    graph = starry_arboricity_graph(n, alpha, hubs=hubs, seed=seed)
    print(
        f"workload: starry arboricity-{alpha} graph, n={n}, "
        f"m={graph.number_of_edges()}, Delta={max_degree(graph)} ({hubs} hubs)"
    )

    result = arb_mis(
        graph, alpha=alpha, seed=seed, apply_degree_reduction=False, early_exit=False
    )
    assert_valid_mis(graph, result.mis)
    report = result.extra["report"]
    params = report.parameters

    print(
        f"\nparameter schedule ({params.profile} profile): "
        f"Theta={params.theta} scales, Lambda={params.lambda_iterations} "
        f"iterations/scale"
    )
    rows = [
        {
            "scale k": k,
            "rho_k (compete cutoff)": round(params.rho(k), 1),
            "high-degree >": round(params.high_degree_threshold(k), 1),
            "bad if > nbrs": round(params.bad_threshold(k), 1),
        }
        for k in params.scales()
    ]
    print(render_rows(rows))

    print("\nper-scale progress:")
    rows = [
        {
            "scale": s.scale,
            "iters": s.iterations_used,
            "active": f"{s.active_before} -> {s.active_after}",
            "joined I": s.joined,
            "eliminated": s.eliminated,
            "forced bad": s.bad_added,
            "invariant": "ok" if s.invariant_satisfied else "VIOLATED",
        }
        for s in report.partial.scale_stats
    ]
    print(render_rows(rows))

    shattering = analyze_bad_components(graph, report.partial.bad_set)
    print(f"\n{shattering.summary()}")

    finishing = report.finishing
    component = finishing.component_report
    print(
        f"\nfinishing: |Vlo|={finishing.vlo_size} ({finishing.vlo_iterations} iters), "
        f"|Vhi|={finishing.vhi_size} ({finishing.vhi_iterations} iters), "
        f"{component.component_count if component else 0} bad components "
        f"(parallel cost {component.max_rounds if component else 0} rounds)"
    )
    print(f"\n{result.summary()}")

    # ------------------------------------------------------------------
    # B empty above is exactly Theorem 3.6's prediction (bad probability
    # 1/Delta^2p) — randomness clears the graph long before anything goes
    # bad.  To watch the *failure path* (bad-marking, shattered components,
    # Lemma 3.8's deterministic finishing) actually fire, we need both an
    # adversarial topology (witness nodes touching many persistent hubs)
    # and a crippled algorithm (rho = 0: nobody competes, so nothing is
    # ever eliminated and the invariant cannot be restored).
    # ------------------------------------------------------------------
    import dataclasses

    import networkx as nx

    from repro.core.parameters import compute_parameters

    hub_count, leaves_per_hub, witnesses, hubs_per_witness = 24, 40, 50, 12
    adversarial = nx.Graph()
    next_id = hub_count
    for hub in range(hub_count):
        for _ in range(leaves_per_hub):
            adversarial.add_edge(hub, next_id)
            next_id += 1
    witness_ids = list(range(next_id, next_id + witnesses))
    for index, w in enumerate(witness_ids):
        for j in range(hubs_per_witness):
            adversarial.add_edge(w, (index + j) % hub_count)
    for a, b in zip(witness_ids, witness_ids[1:]):  # chain the witnesses
        adversarial.add_edge(a, b)

    crippled = dataclasses.replace(
        compute_parameters(alpha, max_degree(adversarial), "practical"),
        rho_factor=0.0,  # nobody competes: pure invariant bookkeeping
        lambda_iterations=1,
    )
    stressed = arb_mis(
        adversarial,
        alpha=alpha,
        seed=seed,
        parameters=crippled,
        apply_degree_reduction=False,
        early_exit=False,
    )
    assert_valid_mis(adversarial, stressed.mis)
    sreport = stressed.extra["report"]
    sshatter = analyze_bad_components(adversarial, sreport.partial.bad_set)
    scomp = sreport.finishing.component_report
    print(
        f"\nadversarial run (rho=0, witness nodes on {hubs_per_witness} hubs "
        f"each):\n  {sshatter.summary()}\n"
        f"  deterministic finishing over {scomp.component_count} bad "
        f"component(s): parallel cost {scomp.max_rounds} rounds "
        f"(Barenboim-Elkin forests + Cole-Vishkin sweeps),\n"
        f"  and the final output is still a valid MIS of the whole graph."
    )


if __name__ == "__main__":
    main()
