#!/usr/bin/env python3
"""Beyond MIS: maximal matching and the CONGEST primitives.

The paper sits in a family of symmetry-breaking problems; this example
shows the library's neighbors of MIS working together:

1. **Israeli–Itai maximal matching** (the paper's citation [8]) on an
   arboricity-2 workload, cross-checked against the line-graph-MIS
   reduction and the greedy reference;
2. **leader election + BFS + convergecast** — the primitives a real
   CONGEST deployment of §3.3's "process each component in parallel"
   bootstraps from — computing component sizes distributedly and checking
   them against the offline truth.

Run:  python examples/matching_and_primitives.py
"""

import networkx as nx

from repro.analysis.tables import render_rows
from repro.congest.aggregation import component_sizes_via_convergecast
from repro.graphs.generators import bounded_arboricity_graph, random_tree
from repro.matching.greedy import greedy_matching
from repro.matching.israeli_itai import (
    israeli_itai_matching,
    israeli_itai_matching_congest,
)
from repro.matching.validation import assert_valid_maximal_matching
from repro.matching.via_mis import matching_via_line_graph_mis


def main() -> None:
    n, seed = 1200, 5
    graph = bounded_arboricity_graph(n, 2, seed=seed)
    print(f"workload: arboricity-2 graph, n={n}, m={graph.number_of_edges()}")

    rows = []
    fast = israeli_itai_matching(graph, seed=seed)
    assert_valid_maximal_matching(graph, fast.matching)
    rows.append({"method": "israeli-itai (fast engine)", "|M|": fast.size, "iterations": fast.iterations})

    congest = israeli_itai_matching_congest(graph, seed=seed)
    assert_valid_maximal_matching(graph, congest.matching)
    rows.append(
        {
            "method": "israeli-itai (CONGEST engine)",
            "|M|": congest.size,
            "iterations": congest.iterations,
            "note": "bit-identical" if congest.matching == fast.matching else "MISMATCH",
        }
    )

    reduced = matching_via_line_graph_mis(graph, seed=seed)
    assert_valid_maximal_matching(graph, reduced.matching)
    rows.append({"method": "MIS on line graph (oracle)", "|M|": reduced.size, "iterations": reduced.iterations})

    greedy = greedy_matching(graph)
    rows.append({"method": "greedy (centralized)", "|M|": len(greedy)})
    print("\n" + render_rows(rows, title="maximal matching"))

    # --- CONGEST primitives: distributed component sizes ---------------
    forest = nx.union(
        random_tree(300, seed=1),
        nx.relabel_nodes(random_tree(200, seed=2), {i: i + 1000 for i in range(200)}),
    )
    sizes, rounds = component_sizes_via_convergecast(forest)
    truth = {min(c): len(c) for c in nx.connected_components(forest)}
    print(
        f"\ncomponent sizes via leader election + BFS + convergecast "
        f"({rounds} rounds): {sizes}"
    )
    print(f"offline truth agrees: {sizes == truth}")


if __name__ == "__main__":
    main()
