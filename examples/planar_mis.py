#!/usr/bin/env python3
"""Domain scenario: MIS on planar graphs (arboricity ≤ 3).

The paper's introduction motivates bounded arboricity with the "rich
family" of constant-arboricity classes — planar graphs chief among them
(think wireless networks embedded in the plane, or road networks).  This
example:

1. generates a random maximal planar graph (the hardest planar case:
   3n-6 edges),
2. *certifies* its arboricity with the flow-based machinery
   (Nash–Williams lower bound + pseudoarboricity), plus an explicit
   forest-partition witness,
3. runs every registered MIS algorithm on it and compares iteration
   counts and MIS sizes.

Run:  python examples/planar_mis.py
"""

from repro.analysis.tables import render_rows
from repro.graphs.arboricity import arboricity_bounds, pseudoarboricity
from repro.graphs.forests import forest_count_of_partition, forest_partition_greedy
from repro.graphs.generators import random_maximal_planar_graph
from repro.mis.greedy import min_degree_mis
from repro.mis.registry import available_algorithms, get_algorithm
from repro.mis.validation import assert_valid_mis


def main() -> None:
    n, seed = 1500, 11
    graph = random_maximal_planar_graph(n, seed=seed)
    print(f"workload: random maximal planar graph, n={n}, "
          f"m={graph.number_of_edges()} (= 3n-6)")

    low, high = arboricity_bounds(graph)
    parts = forest_partition_greedy(graph)
    print(f"arboricity certificate: {low} <= alpha <= {high} "
          f"(pseudoarboricity {pseudoarboricity(graph)}, "
          f"explicit partition into {forest_count_of_partition(parts)} forests)")
    alpha = low

    rows = []
    for name in available_algorithms():
        if name in ("tree-independent-set", "lenzen-wattenhofer"):
            continue  # planar graphs are not forests
        fn = get_algorithm(name)
        kwargs = {"alpha": alpha} if name == "arb-mis" else {}
        result = fn(graph, seed=seed, **kwargs)
        assert_valid_mis(graph, result.mis)
        rows.append(
            {
                "algorithm": name,
                "|MIS|": len(result.mis),
                "iterations": result.iterations,
                "congest rounds": result.congest_rounds or "-",
            }
        )
    greedy_size = len(min_degree_mis(graph))
    rows.append({"algorithm": "min-degree greedy (centralized)", "|MIS|": greedy_size})
    print("\n" + render_rows(rows, title=f"MIS algorithms on planar n={n} (alpha={alpha})"))

    # Planar graphs are 4-colorable, so any MIS has at least n/4 nodes... no:
    # the *maximum* independent set has >= n/4 nodes; an MIS can be smaller,
    # but never below n/(Delta+1).  Both facts are checked here for fun.
    delta = max(d for _, d in graph.degree())
    for row in rows:
        assert row["|MIS|"] >= n / (delta + 1)


if __name__ == "__main__":
    main()
