#!/usr/bin/env python3
"""Scaling curves in the terminal: measured iterations vs theory shapes.

Sweeps n over three octaves on arboricity-2 workloads with the bulk
engine, then draws an ASCII chart of the measured iteration counts for
Luby-B, Métivier and the full ArbMIS pipeline, next to the theoretical
log n and sqrt(log n · log log n) reference curves (scaled to match at
the smallest n).  This is experiment E1/E2's content as a picture.

Run:  python examples/scaling_curves.py
"""

import math

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.stats import summarize
from repro.core.arb_mis import arb_mis
from repro.graphs.generators import bounded_arboricity_graph
from repro.mis.bulk import metivier_mis_bulk
from repro.mis.luby import luby_b_mis

SIZES = [2**10, 2**11, 2**12, 2**13, 2**14]
SEEDS = [0, 1, 2]
ALPHA = 2


def main() -> None:
    measured = {"luby-b": [], "metivier": [], "arb-mis": []}
    for n in SIZES:
        luby, met, arb = [], [], []
        for seed in SEEDS:
            graph = bounded_arboricity_graph(n, ALPHA, seed=seed)
            luby.append(luby_b_mis(graph, seed=seed).iterations)
            met.append(metivier_mis_bulk(graph, seed=seed).iterations)
            arb.append(arb_mis(graph, alpha=ALPHA, seed=seed, engine="bulk").iterations)
        measured["luby-b"].append((n, summarize(luby).mean))
        measured["metivier"].append((n, summarize(met).mean))
        measured["arb-mis"].append((n, summarize(arb).mean))

    # Theory shapes, anchored to luby-b / arb-mis at the smallest n.
    anchor_n = SIZES[0]
    luby_anchor = measured["luby-b"][0][1] / math.log2(anchor_n)
    arb_anchor = measured["arb-mis"][0][1] / math.sqrt(
        math.log2(anchor_n) * math.log2(math.log2(anchor_n))
    )
    measured["c*log n"] = [(n, luby_anchor * math.log2(n)) for n in SIZES]
    measured["c*sqrt(log n loglog n)"] = [
        (n, arb_anchor * math.sqrt(math.log2(n) * math.log2(math.log2(n))))
        for n in SIZES
    ]

    print(
        ascii_plot(
            measured,
            width=66,
            height=18,
            log_x=True,
            title=f"iterations vs n (alpha={ALPHA}, mean of {len(SEEDS)} seeds)",
            x_label="n",
            y_label="iterations",
        )
    )
    print(
        "\nReading: the measured curves sit near the bottom, far below the\n"
        "anchored theory shapes — the baselines' constants are tiny on sparse\n"
        "graphs (see EXPERIMENTS.md E16), and arb-mis tracks metivier because\n"
        "at these degrees the scale machinery clears the graph immediately."
    )


if __name__ == "__main__":
    main()
