#!/usr/bin/env python3
"""Inside the CONGEST simulator: an annotated execution transcript.

Runs the Métivier node program on a small tree with message-size
enforcement *on* and a trace recorder attached, then prints:

* the first rounds of the raw event transcript (sends, halts),
* each node's final output (MIS member vs dominated, and when),
* the bit-accounting summary against the B = O(log n) budget,
* a cross-check that the CONGEST output is bit-identical to the fast
  engine's (the DESIGN.md §4 engine-duality contract).

Run:  python examples/congest_trace.py
"""

from repro.congest.network import Network
from repro.congest.simulator import SynchronousSimulator
from repro.congest.tracing import TraceRecorder
from repro.graphs.generators import random_tree
from repro.mis.engine import mis_from_outputs
from repro.mis.metivier import MetivierMIS, metivier_mis
from repro.mis.validation import assert_valid_mis


def main() -> None:
    n, seed = 12, 4
    graph = random_tree(n, seed=seed)
    print(f"workload: random tree, n={n}")
    print("edges:", sorted(graph.edges()))

    trace = TraceRecorder()
    network = Network(graph)
    simulator = SynchronousSimulator(
        network, seed=seed, enforce_congest=True, trace=trace
    )
    run = simulator.run(MetivierMIS())

    print("\ntranscript (first 40 events):")
    print(trace.render(limit=40))

    print("\nnode outcomes:")
    for v in sorted(run.outputs):
        outcome, iteration = run.outputs[v][0], run.outputs[v][1]
        label = "joined MIS" if outcome == "mis" else "dominated "
        print(f"  node {v:2d}: {label} in iteration {iteration}")

    mis = mis_from_outputs(run.outputs)
    assert_valid_mis(graph, mis)
    print(f"\nMIS = {sorted(mis)}")
    print(f"bit accounting: {run.metrics.summary()}")

    fast = metivier_mis(graph, seed=seed)
    print(
        f"engine duality check: CONGEST == fast engine -> "
        f"{mis == fast.mis} (both drew identical keyed randomness)"
    )


if __name__ == "__main__":
    main()
