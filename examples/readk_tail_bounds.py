#!/usr/bin/env python3
"""The read-k inequality toolkit, standalone.

The paper's §1.1 introduces the Gavinsky–Lovett–Saks–Srinivasan bounds as
a general tool "for the analysis of randomized distributed algorithms".
This example uses the toolkit exactly as an analyst would:

1. declare a read-k family mirroring a concrete dependency structure
   (parents sharing children — the paper's Event (1) shape),
2. confirm the structure (k is *computed* from the declared reads, not
   asserted),
3. compare Monte-Carlo ground truth against Theorem 1.1 (conjunction)
   and Theorem 1.2 (tails, both forms), with Chernoff and Azuma as
   reference points.

Run:  python examples/readk_tail_bounds.py
"""

from repro.analysis.tables import render_rows
from repro.readk.bounds import azuma_lower_tail
from repro.readk.empirical import (
    estimate_conjunction_probability,
    estimate_lower_tail,
)
from repro.readk.family import shared_parent_family


def main() -> None:
    trials = 40_000

    print("Conjunction bound (Theorem 1.1): Pr[Y_1=...=Y_n=1] <= p^(n/k)")
    rows = []
    for n, children, k in ((8, 2, 1), (8, 2, 2), (8, 2, 4), (16, 3, 4)):
        family = shared_parent_family(n, children, k)
        est = estimate_conjunction_probability(family, trials=trials, seed=n * 7 + k)
        rows.append(
            {
                "n": n,
                "k (computed)": est.k,
                "empirical": f"{est.empirical:.2e}",
                "read-k bound": f"{est.bound:.2e}",
                "if independent": f"{est.independent_reference:.2e}",
                "slack (bound/emp)": "inf" if est.slack == float("inf") else f"{est.slack:.1f}x",
            }
        )
    print(render_rows(rows))

    print("\nLower tail (Theorem 1.2): Pr[Y <= (1-d)E[Y]]")
    rows = []
    for k in (1, 2, 4, 8):
        family = shared_parent_family(60, 2, k)
        est = estimate_lower_tail(family, delta=0.5, trials=trials, seed=k)
        azuma = azuma_lower_tail(0.5 * est.expectation, len(family.base_names), k)
        rows.append(
            {
                "k": k,
                "E[Y]": round(est.expectation, 1),
                "empirical": f"{est.empirical:.2e}",
                "form (1)": f"{est.bound_form1:.2e}",
                "form (2)": f"{est.bound_form2:.2e}",
                "chernoff (k=1 ref)": f"{est.chernoff_reference:.2e}",
                "azuma (lipschitz ref)": f"{azuma:.2e}",
            }
        )
    print(render_rows(rows))
    print(
        "\nReading: the read-k bounds lose exactly a 1/k factor in the "
        "exponent vs Chernoff,\nand beat the Azuma route because Azuma pays "
        "for all base variables, read-k only for n/k."
    )


if __name__ == "__main__":
    main()
