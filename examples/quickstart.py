#!/usr/bin/env python3
"""Quickstart: compute an MIS of a bounded-arboricity graph with ArbMIS.

Builds a 2000-node arboricity-3 graph (a union of three random spanning
trees), runs the paper's full pipeline, validates the result, and prints
the stage-by-stage report.

Run:  python examples/quickstart.py
"""

from repro import (
    arb_mis,
    assert_valid_mis,
    bounded_arboricity_graph,
    luby_b_mis,
    metivier_mis,
)


def main() -> None:
    n, alpha, seed = 2000, 3, 7
    graph = bounded_arboricity_graph(n=n, alpha=alpha, seed=seed)
    print(f"workload: union of {alpha} random trees, n={n}, "
          f"m={graph.number_of_edges()}")

    # The paper's algorithm (Algorithm 2: shattering + finishing).
    result = arb_mis(graph, alpha=alpha, seed=seed)
    assert_valid_mis(graph, result.mis)  # independence + maximality
    print(f"\n{result.summary()}")
    print("\nstage report:")
    print(result.extra["report"].stage_summary())

    # The classical baselines on the same graph, same seed.
    print("\nbaselines:")
    for fn in (metivier_mis, luby_b_mis):
        baseline = fn(graph, seed=seed)
        assert_valid_mis(graph, baseline.mis)
        print(f"  {baseline.summary()}")


if __name__ == "__main__":
    main()
